//! Fixed-width bit packing for dictionary ids.
//!
//! A column whose dictionary has `c` distinct values needs only
//! `ceil(log2(c))` bits per document. [`PackedIntVec`] stores a sequence of
//! u32 values at that width inside a `Vec<u64>`, giving the "bit packing of
//! values" the paper lists among its encoding strategies.

/// Documents decoded per batch by the vectorized execution path: one
/// block fills one scratch buffer, small enough to stay cache-resident.
pub const BLOCK: usize = 1024;

/// Bits needed to represent values in `[0, max_value]`.
pub fn bits_needed(max_value: u32) -> u8 {
    if max_value == 0 {
        1
    } else {
        (32 - max_value.leading_zeros()) as u8
    }
}

/// A fixed-width packed vector of u32 values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedIntVec {
    bits: u8,
    len: usize,
    words: Vec<u64>,
}

impl PackedIntVec {
    /// Create an empty vector storing `bits`-wide values (1..=32).
    pub fn new(bits: u8) -> PackedIntVec {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        PackedIntVec {
            bits,
            len: 0,
            words: Vec::new(),
        }
    }

    /// Pack an existing slice at the minimal width for its maximum.
    pub fn from_slice(values: &[u32]) -> PackedIntVec {
        let bits = bits_needed(values.iter().copied().max().unwrap_or(0));
        let mut v = PackedIntVec::with_capacity(bits, values.len());
        for &x in values {
            v.push(x);
        }
        v
    }

    pub fn with_capacity(bits: u8, n: usize) -> PackedIntVec {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        let words = (n * bits as usize).div_ceil(64);
        PackedIntVec {
            bits,
            len: 0,
            words: Vec::with_capacity(words),
        }
    }

    pub fn bits(&self) -> u8 {
        self.bits
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a value; panics in debug builds if it exceeds the width.
    pub fn push(&mut self, value: u32) {
        debug_assert!(
            self.bits == 32 || value < (1u32 << self.bits),
            "value {value} exceeds {} bits",
            self.bits
        );
        let bit_pos = self.len * self.bits as usize;
        let word = bit_pos / 64;
        let offset = bit_pos % 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= (value as u64) << offset;
        let spill = offset + self.bits as usize;
        if spill > 64 {
            // Value straddles a word boundary.
            self.words.push((value as u64) >> (64 - offset));
        }
        self.len += 1;
    }

    /// Read the value at `idx`. Panics when out of bounds.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        let bits = self.bits as usize;
        let bit_pos = idx * bits;
        let word = bit_pos / 64;
        let offset = bit_pos % 64;
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mut v = self.words[word] >> offset;
        if offset + bits > 64 {
            v |= self.words[word + 1] << (64 - offset);
        }
        (v & mask) as u32
    }

    /// Iterate all values.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Bulk-read `[start, end)` into `out` (cleared first) — the batched
    /// read path range scans on sorted columns use.
    pub fn read_range(&self, start: usize, end: usize, out: &mut Vec<u32>) {
        assert!(start <= end && end <= self.len);
        out.clear();
        out.resize(end - start, 0);
        self.unpack_block(start, out);
    }

    /// Bulk-decode `out.len()` consecutive values starting at `start`,
    /// word at a time. Widths that divide 64 (1, 2, 4, 8, 16, 32 bits)
    /// never straddle a word, so their inner loop is a shift-and-mask
    /// over one loaded word; other widths advance a bit cursor and
    /// splice the straddling high part from the next word.
    pub fn unpack_block(&self, start: usize, out: &mut [u32]) {
        let n = out.len();
        assert!(
            start + n <= self.len,
            "unpack_block [{start}, {}) out of bounds (len {})",
            start + n,
            self.len
        );
        if n == 0 {
            return;
        }
        let bits = self.bits as usize;
        let mask = if bits == 32 {
            u64::from(u32::MAX)
        } else {
            (1u64 << bits) - 1
        };
        if 64 % bits == 0 {
            // Whole-word widths: no value straddles a word, so decode a
            // word at a time. The word index advances incrementally —
            // one division up front, none in the loop.
            let per = 64 / bits;
            let mut word_idx = start / per;
            let lane = start % per;
            let mut i = 0;
            if lane != 0 {
                let take = (per - lane).min(n);
                let mut word = self.words[word_idx] >> (lane * bits);
                for slot in &mut out[..take] {
                    *slot = (word & mask) as u32;
                    word >>= bits;
                }
                i = take;
                word_idx += 1;
            }
            while i + per <= n {
                let mut word = self.words[word_idx];
                for slot in &mut out[i..i + per] {
                    *slot = (word & mask) as u32;
                    word >>= bits;
                }
                i += per;
                word_idx += 1;
            }
            if i < n {
                let mut word = self.words[word_idx];
                for slot in &mut out[i..n] {
                    *slot = (word & mask) as u32;
                    word >>= bits;
                }
            }
        } else {
            let mut bit_pos = start * bits;
            for slot in out.iter_mut() {
                let word = bit_pos >> 6;
                let offset = bit_pos & 63;
                let mut v = self.words[word] >> offset;
                if offset + bits > 64 {
                    v |= self.words[word + 1] << (64 - offset);
                }
                *slot = (v & mask) as u32;
                bit_pos += bits;
            }
        }
    }

    /// Approximate heap bytes used.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.len() * 8
    }

    pub(crate) fn raw_parts(&self) -> (u8, usize, &[u64]) {
        (self.bits, self.len, &self.words)
    }

    pub(crate) fn from_raw_parts(bits: u8, len: usize, words: Vec<u64>) -> Option<PackedIntVec> {
        if !(1..=32).contains(&bits) {
            return None;
        }
        let needed = (len * bits as usize).div_ceil(64);
        if words.len() != needed {
            return None;
        }
        Some(PackedIntVec { bits, len, words })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_needed_edges() {
        assert_eq!(bits_needed(0), 1);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(u32::MAX), 32);
    }

    #[test]
    fn push_get_round_trip_varied_widths() {
        for bits in [1u8, 3, 7, 8, 13, 16, 17, 31, 32] {
            let max = if bits == 32 {
                u32::MAX
            } else {
                (1u32 << bits) - 1
            };
            let values: Vec<u32> = (0..1000u32)
                .map(|i| (i.wrapping_mul(2_654_435_761)) % (max / 2 + 1) + max / 2)
                .collect();
            let mut v = PackedIntVec::new(bits);
            for &x in &values {
                v.push(x);
            }
            assert_eq!(v.len(), values.len());
            for (i, &x) in values.iter().enumerate() {
                assert_eq!(v.get(i), x, "bits={bits} idx={i}");
            }
            assert_eq!(v.iter().collect::<Vec<_>>(), values);
        }
    }

    #[test]
    fn from_slice_uses_minimal_width() {
        let v = PackedIntVec::from_slice(&[0, 5, 9]);
        assert_eq!(v.bits(), 4);
        let v = PackedIntVec::from_slice(&[0]);
        assert_eq!(v.bits(), 1);
        let v = PackedIntVec::from_slice(&[]);
        assert_eq!(v.bits(), 1);
        assert!(v.is_empty());
    }

    #[test]
    fn straddling_word_boundaries() {
        // 13-bit values: 64/13 is not integral, so values straddle words.
        let mut v = PackedIntVec::new(13);
        let values: Vec<u32> = (0..200).map(|i| (i * 37) % 8192).collect();
        for &x in &values {
            v.push(x);
        }
        for (i, &x) in values.iter().enumerate() {
            assert_eq!(v.get(i), x);
        }
    }

    #[test]
    fn read_range_bulk() {
        let v = PackedIntVec::from_slice(&(0..100u32).collect::<Vec<_>>());
        let mut out = Vec::new();
        v.read_range(10, 20, &mut out);
        assert_eq!(out, (10..20u32).collect::<Vec<_>>());
        v.read_range(0, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn unpack_block_matches_get() {
        for bits in [1u8, 2, 3, 4, 7, 8, 11, 13, 16, 17, 24, 31, 32] {
            let max = if bits == 32 {
                u32::MAX
            } else {
                (1u32 << bits) - 1
            };
            let values: Vec<u32> = (0..2500u32)
                .map(|i| i.wrapping_mul(2_654_435_761) & max)
                .collect();
            let v = {
                let mut v = PackedIntVec::new(bits);
                for &x in &values {
                    v.push(x);
                }
                v
            };
            // Offsets/lengths chosen to hit word-aligned and straddling
            // starts, partial first/last words, and block boundaries.
            for (start, len) in [
                (0, 0),
                (0, 1),
                (0, BLOCK),
                (1, BLOCK),
                (63, 130),
                (values.len() - 1, 1),
                (500, values.len() - 500),
            ] {
                let mut out = vec![0u32; len];
                v.unpack_block(start, &mut out);
                assert_eq!(
                    out,
                    values[start..start + len],
                    "bits={bits} start={start} len={len}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn unpack_block_out_of_bounds_panics() {
        let v = PackedIntVec::from_slice(&[1, 2, 3]);
        let mut out = [0u32; 2];
        v.unpack_block(2, &mut out);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let v = PackedIntVec::from_slice(&[1, 2]);
        v.get(2);
    }

    #[test]
    fn packing_actually_compresses() {
        let values: Vec<u32> = (0..10_000).map(|i| i % 16).collect();
        let v = PackedIntVec::from_slice(&values);
        assert_eq!(v.bits(), 4);
        // 10_000 values at 4 bits = 5 KB, vs 40 KB raw.
        assert!(v.size_bytes() < 6_000);
    }

    #[test]
    fn raw_parts_round_trip() {
        let v = PackedIntVec::from_slice(&[7, 1, 4, 4, 0]);
        let (bits, len, words) = v.raw_parts();
        let back = PackedIntVec::from_raw_parts(bits, len, words.to_vec()).unwrap();
        assert_eq!(back, v);
        assert!(PackedIntVec::from_raw_parts(0, 5, vec![]).is_none());
        assert!(PackedIntVec::from_raw_parts(8, 100, vec![0; 1]).is_none());
    }
}
