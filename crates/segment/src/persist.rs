//! Binary segment persistence.
//!
//! Segments travel as opaque blobs: servers upload committed realtime
//! segments to the controller, the controller stores them in the object
//! store, and servers download and load them on the OFFLINE → ONLINE
//! transition (§3.3.1, Figure 4). This module defines that blob format.
//!
//! Layout: `magic "PSEG" | version u16 | fnv64 checksum of payload | payload`.
//! The payload serializes the schema, metadata, and every column
//! (dictionary, forward index, optional inverted/sorted indexes, and —
//! since version 2 — an optional blocked bloom filter). All integers are
//! little-endian. Deserialization re-validates structure and the checksum
//! so corrupted blobs are rejected at load time.
//!
//! Version history: v1 has no per-column bloom section; v1 blobs still
//! load (blooms come back absent and pruning degrades to zone maps only).
//! Writers always emit the current version.

use crate::bitpack::PackedIntVec;
use crate::bloom::BloomFilter;
use crate::column::ColumnData;
use crate::dictionary::Dictionary;
use crate::forward::ForwardIndex;
use crate::inverted::InvertedIndex;
use crate::metadata::{PartitionInfo, SegmentMetadata};
use crate::segment::ImmutableSegment;
use crate::sorted_index::SortedIndex;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pinot_bitmap::RoaringBitmap;
use pinot_common::{DataType, FieldRole, FieldSpec, PinotError, Result, Schema, TimeUnit, Value};

const MAGIC: &[u8; 4] = b"PSEG";
/// Current format version. v2 added the per-column bloom section.
const VERSION: u16 = 2;
/// Oldest version this build still reads.
const MIN_VERSION: u16 = 1;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Serialize a segment to a self-validating blob (current version).
pub fn serialize(seg: &ImmutableSegment) -> Vec<u8> {
    serialize_with_version(seg, VERSION)
}

fn serialize_with_version(seg: &ImmutableSegment, version: u16) -> Vec<u8> {
    let mut payload = BytesMut::with_capacity(seg.size_bytes() as usize / 2 + 1024);
    write_schema(&mut payload, seg.schema());
    write_metadata(&mut payload, seg.metadata());
    payload.put_u32_le(seg.columns().len() as u32);
    for col in seg.columns() {
        write_column(&mut payload, col, version);
    }
    let mut out = Vec::with_capacity(payload.len() + 14);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&fnv64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Deserialize and validate a segment blob.
pub fn deserialize(bytes: &[u8]) -> Result<ImmutableSegment> {
    if bytes.len() < 14 || &bytes[0..4] != MAGIC {
        return Err(err("bad magic"));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(err(&format!("unsupported segment version {version}")));
    }
    let checksum = u64::from_le_bytes(bytes[6..14].try_into().unwrap());
    let payload = &bytes[14..];
    if fnv64(payload) != checksum {
        return Err(err("checksum mismatch"));
    }
    let mut buf = Bytes::copy_from_slice(payload);
    let schema = read_schema(&mut buf)?;
    let mut metadata = read_metadata(&mut buf)?;
    let ncols = read_u32(&mut buf)? as usize;
    if ncols != schema.num_columns() {
        return Err(err("column count does not match schema"));
    }
    let mut columns = Vec::with_capacity(ncols);
    for spec in schema.fields() {
        columns.push(read_column(&mut buf, spec.clone(), version)?);
    }
    if buf.has_remaining() {
        return Err(err("trailing bytes"));
    }
    // Sanity: every column must agree on the document count.
    for c in &columns {
        if c.forward.num_docs() as u32 != metadata.num_docs {
            return Err(err("column doc count mismatch"));
        }
    }
    refresh_metadata(&mut metadata, &columns);
    Ok(ImmutableSegment::new(metadata, schema, columns))
}

fn err(msg: &str) -> PinotError {
    PinotError::Segment(format!("segment blob: {msg}"))
}

// ---- primitive helpers ----

fn write_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn read_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(err("truncated (u8)"));
    }
    Ok(buf.get_u8())
}

fn read_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(err("truncated (u32)"));
    }
    Ok(buf.get_u32_le())
}

fn read_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(err("truncated (u64)"));
    }
    Ok(buf.get_u64_le())
}

fn read_i64(buf: &mut Bytes) -> Result<i64> {
    Ok(read_u64(buf)? as i64)
}

fn read_str(buf: &mut Bytes) -> Result<String> {
    let n = read_u32(buf)? as usize;
    if buf.remaining() < n {
        return Err(err("truncated (string)"));
    }
    let raw = buf.copy_to_bytes(n);
    String::from_utf8(raw.to_vec()).map_err(|_| err("invalid utf-8"))
}

fn write_opt_i64(buf: &mut BytesMut, v: Option<i64>) {
    match v {
        Some(x) => {
            buf.put_u8(1);
            buf.put_i64_le(x);
        }
        None => buf.put_u8(0),
    }
}

fn read_opt_i64(buf: &mut Bytes) -> Result<Option<i64>> {
    match read_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(read_i64(buf)?)),
        _ => Err(err("bad option tag")),
    }
}

fn write_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Int(x) => {
            buf.put_u8(0);
            buf.put_i32_le(*x);
        }
        Value::Long(x) => {
            buf.put_u8(1);
            buf.put_i64_le(*x);
        }
        Value::Float(x) => {
            buf.put_u8(2);
            buf.put_f32_le(*x);
        }
        Value::Double(x) => {
            buf.put_u8(3);
            buf.put_f64_le(*x);
        }
        Value::String(s) => {
            buf.put_u8(4);
            write_str(buf, s);
        }
        Value::Boolean(b) => {
            buf.put_u8(5);
            buf.put_u8(*b as u8);
        }
        Value::IntArray(xs) => {
            buf.put_u8(6);
            buf.put_u32_le(xs.len() as u32);
            for x in xs {
                buf.put_i32_le(*x);
            }
        }
        Value::LongArray(xs) => {
            buf.put_u8(7);
            buf.put_u32_le(xs.len() as u32);
            for x in xs {
                buf.put_i64_le(*x);
            }
        }
        Value::StringArray(xs) => {
            buf.put_u8(8);
            buf.put_u32_le(xs.len() as u32);
            for x in xs {
                write_str(buf, x);
            }
        }
        Value::Null => buf.put_u8(9),
    }
}

fn read_value(buf: &mut Bytes) -> Result<Value> {
    let tag = read_u8(buf)?;
    Ok(match tag {
        0 => Value::Int(read_u32(buf)? as i32),
        1 => Value::Long(read_i64(buf)?),
        2 => {
            if buf.remaining() < 4 {
                return Err(err("truncated (f32)"));
            }
            Value::Float(buf.get_f32_le())
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(err("truncated (f64)"));
            }
            Value::Double(buf.get_f64_le())
        }
        4 => Value::String(read_str(buf)?),
        5 => Value::Boolean(read_u8(buf)? != 0),
        6 => {
            let n = read_u32(buf)? as usize;
            let mut xs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                xs.push(read_u32(buf)? as i32);
            }
            Value::IntArray(xs)
        }
        7 => {
            let n = read_u32(buf)? as usize;
            let mut xs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                xs.push(read_i64(buf)?);
            }
            Value::LongArray(xs)
        }
        8 => {
            let n = read_u32(buf)? as usize;
            let mut xs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                xs.push(read_str(buf)?);
            }
            Value::StringArray(xs)
        }
        9 => Value::Null,
        _ => return Err(err("bad value tag")),
    })
}

// ---- schema ----

fn dt_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Long => 1,
        DataType::Float => 2,
        DataType::Double => 3,
        DataType::String => 4,
        DataType::Boolean => 5,
    }
}

fn dt_from_tag(t: u8) -> Result<DataType> {
    Ok(match t {
        0 => DataType::Int,
        1 => DataType::Long,
        2 => DataType::Float,
        3 => DataType::Double,
        4 => DataType::String,
        5 => DataType::Boolean,
        _ => return Err(err("bad data type tag")),
    })
}

fn write_schema(buf: &mut BytesMut, schema: &Schema) {
    write_str(buf, schema.name());
    buf.put_u32_le(schema.num_columns() as u32);
    for f in schema.fields() {
        write_str(buf, &f.name);
        buf.put_u8(dt_tag(f.data_type));
        buf.put_u8(match f.role {
            FieldRole::Dimension => 0,
            FieldRole::Metric => 1,
            FieldRole::Time => 2,
        });
        buf.put_u8(f.single_value as u8);
        match f.time_unit {
            None => buf.put_u8(0),
            Some(u) => buf.put_u8(match u {
                TimeUnit::Millis => 1,
                TimeUnit::Seconds => 2,
                TimeUnit::Minutes => 3,
                TimeUnit::Hours => 4,
                TimeUnit::Days => 5,
            }),
        }
        write_value(buf, &f.default_value);
    }
}

fn read_schema(buf: &mut Bytes) -> Result<Schema> {
    let name = read_str(buf)?;
    let n = read_u32(buf)? as usize;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let fname = read_str(buf)?;
        let data_type = dt_from_tag(read_u8(buf)?)?;
        let role = match read_u8(buf)? {
            0 => FieldRole::Dimension,
            1 => FieldRole::Metric,
            2 => FieldRole::Time,
            _ => return Err(err("bad field role")),
        };
        let single_value = read_u8(buf)? != 0;
        let time_unit = match read_u8(buf)? {
            0 => None,
            1 => Some(TimeUnit::Millis),
            2 => Some(TimeUnit::Seconds),
            3 => Some(TimeUnit::Minutes),
            4 => Some(TimeUnit::Hours),
            5 => Some(TimeUnit::Days),
            _ => return Err(err("bad time unit")),
        };
        let default_value = read_value(buf)?;
        fields.push(FieldSpec {
            name: fname,
            data_type,
            role,
            single_value,
            time_unit,
            default_value,
        });
    }
    Schema::new(name, fields)
}

// ---- metadata ----

fn write_metadata(buf: &mut BytesMut, m: &SegmentMetadata) {
    write_str(buf, &m.segment_name);
    write_str(buf, &m.table);
    buf.put_u32_le(m.num_docs);
    match &m.time_column {
        Some(c) => {
            buf.put_u8(1);
            write_str(buf, c);
        }
        None => buf.put_u8(0),
    }
    write_opt_i64(buf, m.min_time);
    write_opt_i64(buf, m.max_time);
    match &m.partition {
        Some(p) => {
            buf.put_u8(1);
            write_str(buf, &p.column);
            buf.put_u32_le(p.partition_id);
            buf.put_u32_le(p.num_partitions);
        }
        None => buf.put_u8(0),
    }
    match m.offset_range {
        Some((s, e)) => {
            buf.put_u8(1);
            buf.put_u64_le(s);
            buf.put_u64_le(e);
        }
        None => buf.put_u8(0),
    }
    buf.put_i64_le(m.created_at_millis);
}

fn read_metadata(buf: &mut Bytes) -> Result<SegmentMetadata> {
    let segment_name = read_str(buf)?;
    let table = read_str(buf)?;
    let num_docs = read_u32(buf)?;
    let time_column = match read_u8(buf)? {
        0 => None,
        1 => Some(read_str(buf)?),
        _ => return Err(err("bad option tag")),
    };
    let min_time = read_opt_i64(buf)?;
    let max_time = read_opt_i64(buf)?;
    let partition = match read_u8(buf)? {
        0 => None,
        1 => Some(PartitionInfo {
            column: read_str(buf)?,
            partition_id: read_u32(buf)?,
            num_partitions: read_u32(buf)?,
        }),
        _ => return Err(err("bad option tag")),
    };
    let offset_range = match read_u8(buf)? {
        0 => None,
        1 => Some((read_u64(buf)?, read_u64(buf)?)),
        _ => return Err(err("bad option tag")),
    };
    let created_at_millis = read_i64(buf)?;
    Ok(SegmentMetadata {
        segment_name,
        table,
        num_docs,
        columns: Vec::new(), // refreshed after columns load
        time_column,
        min_time,
        max_time,
        partition,
        offset_range,
        created_at_millis,
        size_bytes: 0, // refreshed after columns load
    })
}

// ---- columns ----

fn write_dictionary(buf: &mut BytesMut, d: &Dictionary) {
    match d {
        Dictionary::Int(v) => {
            buf.put_u8(0);
            buf.put_u32_le(v.len() as u32);
            for x in v {
                buf.put_i32_le(*x);
            }
        }
        Dictionary::Long(v) => {
            buf.put_u8(1);
            buf.put_u32_le(v.len() as u32);
            for x in v {
                buf.put_i64_le(*x);
            }
        }
        Dictionary::Float(v) => {
            buf.put_u8(2);
            buf.put_u32_le(v.len() as u32);
            for x in v {
                buf.put_f32_le(*x);
            }
        }
        Dictionary::Double(v) => {
            buf.put_u8(3);
            buf.put_u32_le(v.len() as u32);
            for x in v {
                buf.put_f64_le(*x);
            }
        }
        Dictionary::String(v) => {
            buf.put_u8(4);
            buf.put_u32_le(v.len() as u32);
            for x in v {
                write_str(buf, x);
            }
        }
        Dictionary::Boolean(v) => {
            buf.put_u8(5);
            buf.put_u32_le(v.len() as u32);
            for x in v {
                buf.put_u8(*x as u8);
            }
        }
    }
}

fn read_dictionary(buf: &mut Bytes) -> Result<Dictionary> {
    let tag = read_u8(buf)?;
    let n = read_u32(buf)? as usize;
    Ok(match tag {
        0 => {
            let mut v = Vec::with_capacity(n.min(1 << 22));
            for _ in 0..n {
                v.push(read_u32(buf)? as i32);
            }
            Dictionary::Int(v)
        }
        1 => {
            let mut v = Vec::with_capacity(n.min(1 << 22));
            for _ in 0..n {
                v.push(read_i64(buf)?);
            }
            Dictionary::Long(v)
        }
        2 => {
            let mut v = Vec::with_capacity(n.min(1 << 22));
            for _ in 0..n {
                if buf.remaining() < 4 {
                    return Err(err("truncated (f32 dict)"));
                }
                v.push(buf.get_f32_le());
            }
            Dictionary::Float(v)
        }
        3 => {
            let mut v = Vec::with_capacity(n.min(1 << 22));
            for _ in 0..n {
                if buf.remaining() < 8 {
                    return Err(err("truncated (f64 dict)"));
                }
                v.push(buf.get_f64_le());
            }
            Dictionary::Double(v)
        }
        4 => {
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(read_str(buf)?);
            }
            Dictionary::String(v)
        }
        5 => {
            let mut v = Vec::with_capacity(n.min(4));
            for _ in 0..n {
                v.push(read_u8(buf)? != 0);
            }
            Dictionary::Boolean(v)
        }
        _ => return Err(err("bad dictionary tag")),
    })
}

fn write_packed(buf: &mut BytesMut, p: &PackedIntVec) {
    let (bits, len, words) = p.raw_parts();
    buf.put_u8(bits);
    buf.put_u64_le(len as u64);
    buf.put_u32_le(words.len() as u32);
    for w in words {
        buf.put_u64_le(*w);
    }
}

fn read_packed(buf: &mut Bytes) -> Result<PackedIntVec> {
    let bits = read_u8(buf)?;
    let len = read_u64(buf)? as usize;
    let nwords = read_u32(buf)? as usize;
    let mut words = Vec::with_capacity(nwords.min(1 << 24));
    for _ in 0..nwords {
        words.push(read_u64(buf)?);
    }
    PackedIntVec::from_raw_parts(bits, len, words).ok_or_else(|| err("bad packed vector"))
}

fn write_column(buf: &mut BytesMut, col: &ColumnData, version: u16) {
    write_dictionary(buf, &col.dictionary);
    match &col.forward {
        ForwardIndex::SingleValue(p) => {
            buf.put_u8(0);
            write_packed(buf, p);
        }
        ForwardIndex::MultiValue { offsets, ids } => {
            buf.put_u8(1);
            buf.put_u32_le(offsets.len() as u32);
            for o in offsets {
                buf.put_u32_le(*o);
            }
            write_packed(buf, ids);
        }
        // Realtime cut views canonicalize to a plain packed vector: the
        // on-disk format has no chunked form (sealing rebuilds columns
        // anyway; serializing a cut is only reachable from tests/tools).
        chunked @ ForwardIndex::ChunkedSingle { len, .. } => {
            let mut ids = vec![0u32; *len];
            chunked.read_block(0, &mut ids);
            buf.put_u8(0);
            write_packed(buf, &PackedIntVec::from_slice(&ids));
        }
    }
    match &col.inverted {
        Some(inv) => {
            buf.put_u8(1);
            let bitmaps = inv.bitmaps();
            buf.put_u32_le(bitmaps.len() as u32);
            for bm in bitmaps {
                let blob = pinot_bitmap::serialize(bm);
                buf.put_u32_le(blob.len() as u32);
                buf.put_slice(&blob);
            }
        }
        None => buf.put_u8(0),
    }
    match &col.sorted {
        Some(s) => {
            buf.put_u8(1);
            let starts = s.starts();
            buf.put_u32_le(starts.len() as u32);
            for v in starts {
                buf.put_u32_le(*v);
            }
        }
        None => buf.put_u8(0),
    }
    // v2: optional bloom filter.
    if version < 2 {
        return;
    }
    match &col.bloom {
        Some(f) => {
            buf.put_u8(1);
            buf.put_u64_le(f.seed());
            buf.put_u32_le(f.bits_per_key());
            buf.put_u32_le(f.num_hashes());
            buf.put_u64_le(f.num_keys());
            buf.put_u32_le(f.words().len() as u32);
            for w in f.words() {
                buf.put_u64_le(*w);
            }
        }
        None => buf.put_u8(0),
    }
}

fn read_bloom(buf: &mut Bytes) -> Result<Option<BloomFilter>> {
    match read_u8(buf)? {
        0 => Ok(None),
        1 => {
            let seed = read_u64(buf)?;
            let bits_per_key = read_u32(buf)?;
            let num_hashes = read_u32(buf)?;
            let num_keys = read_u64(buf)?;
            let nwords = read_u32(buf)? as usize;
            if nwords == 0 || !nwords.is_multiple_of(8) {
                return Err(err("bad bloom word count"));
            }
            let mut words = Vec::with_capacity(nwords.min(1 << 24));
            for _ in 0..nwords {
                words.push(read_u64(buf)?);
            }
            Ok(Some(BloomFilter::from_parts(
                seed,
                bits_per_key,
                num_hashes,
                num_keys,
                words,
            )))
        }
        _ => Err(err("bad bloom tag")),
    }
}

fn read_column(buf: &mut Bytes, spec: FieldSpec, version: u16) -> Result<ColumnData> {
    let dictionary = read_dictionary(buf)?;
    let forward = match read_u8(buf)? {
        0 => ForwardIndex::SingleValue(read_packed(buf)?),
        1 => {
            let n = read_u32(buf)? as usize;
            let mut offsets = Vec::with_capacity(n.min(1 << 24));
            for _ in 0..n {
                offsets.push(read_u32(buf)?);
            }
            if offsets.is_empty() || offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(err("bad multi-value offsets"));
            }
            let ids = read_packed(buf)?;
            if *offsets.last().unwrap() as usize != ids.len() {
                return Err(err("multi-value offsets do not cover ids"));
            }
            ForwardIndex::MultiValue { offsets, ids }
        }
        _ => return Err(err("bad forward index tag")),
    };
    let inverted = match read_u8(buf)? {
        0 => None,
        1 => {
            let n = read_u32(buf)? as usize;
            if n != dictionary.cardinality() {
                return Err(err("inverted index cardinality mismatch"));
            }
            let mut bitmaps = Vec::with_capacity(n.min(1 << 22));
            for _ in 0..n {
                let blen = read_u32(buf)? as usize;
                if buf.remaining() < blen {
                    return Err(err("truncated bitmap"));
                }
                let blob = buf.copy_to_bytes(blen);
                let bm: RoaringBitmap =
                    pinot_bitmap::deserialize(&blob).ok_or_else(|| err("bad bitmap"))?;
                bitmaps.push(bm);
            }
            Some(InvertedIndex::from_bitmaps(bitmaps))
        }
        _ => return Err(err("bad inverted tag")),
    };
    let sorted = match read_u8(buf)? {
        0 => None,
        1 => {
            let n = read_u32(buf)? as usize;
            let mut starts = Vec::with_capacity(n.min(1 << 24));
            for _ in 0..n {
                starts.push(read_u32(buf)?);
            }
            Some(SortedIndex::from_starts(starts).ok_or_else(|| err("bad sorted index"))?)
        }
        _ => return Err(err("bad sorted tag")),
    };
    // v1 blobs predate bloom filters: load with the section absent.
    let bloom = if version >= 2 { read_bloom(buf)? } else { None };
    // Cross-checks against the dictionary.
    for doc in 0..forward.num_docs() as u32 {
        // Spot-check only the first and last documents to keep load cheap;
        // full validation happens implicitly at query time via panics on
        // out-of-range ids. Doing all docs would make loads O(n) validation.
        if doc > 0 && doc + 1 < forward.num_docs() as u32 {
            continue;
        }
        let mut ids = Vec::new();
        forward.get_multi(doc, &mut ids);
        if ids.iter().any(|&i| i as usize >= dictionary.cardinality()) {
            return Err(err("forward index id out of dictionary range"));
        }
    }
    Ok(ColumnData {
        spec,
        dictionary: std::sync::Arc::new(dictionary),
        forward,
        inverted,
        sorted,
        bloom,
    })
}

/// Rebuild derived metadata (per-column stats, sizes) after load.
pub(crate) fn refresh_metadata(seg: &mut SegmentMetadata, columns: &[ColumnData]) {
    seg.columns = columns.iter().map(ColumnData::stats).collect();
    seg.size_bytes = columns.iter().map(ColumnData::size_bytes).sum::<usize>() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuilderConfig, SegmentBuilder};
    use pinot_common::Record;

    fn build_segment() -> ImmutableSegment {
        let schema = Schema::new(
            "t",
            vec![
                FieldSpec::dimension("id", DataType::Long),
                FieldSpec::dimension("country", DataType::String),
                FieldSpec::multi_value_dimension("tags", DataType::String),
                FieldSpec::metric("clicks", DataType::Double),
                FieldSpec::time("day", DataType::Long, TimeUnit::Days),
            ],
        )
        .unwrap();
        let cfg = BuilderConfig::new("seg_0", "t_OFFLINE")
            .with_sort_columns(&["id"])
            .with_inverted_columns(&["country", "tags"])
            .with_bloom_columns(&["country"])
            .with_partition(PartitionInfo {
                column: "id".into(),
                partition_id: 2,
                num_partitions: 8,
            })
            .with_offset_range(100, 200);
        let mut b = SegmentBuilder::new(schema, cfg).unwrap();
        for i in 0..500i64 {
            b.add(Record::new(vec![
                Value::Long(i % 37),
                Value::String(format!("c{}", i % 5)),
                Value::StringArray(vec![format!("t{}", i % 3), format!("t{}", i % 7)]),
                Value::Double(i as f64 * 0.5),
                Value::Long(17_000 + i % 10),
            ]))
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let seg = build_segment();
        let blob = serialize(&seg);
        let back = deserialize(&blob).unwrap();

        assert_eq!(back.name(), seg.name());
        assert_eq!(back.num_docs(), seg.num_docs());
        assert_eq!(back.schema(), seg.schema());
        assert_eq!(back.metadata().partition, seg.metadata().partition);
        assert_eq!(back.metadata().offset_range, Some((100, 200)));
        assert_eq!(back.metadata().min_time, seg.metadata().min_time);
        assert_eq!(back.metadata().max_time, seg.metadata().max_time);

        // Every record identical.
        for doc in 0..seg.num_docs() {
            assert_eq!(back.record(doc), seg.record(doc));
        }
        // Indexes survived.
        assert!(back.column("id").unwrap().sorted.is_some());
        let inv = back.column("country").unwrap().inverted.as_ref().unwrap();
        let orig = seg.column("country").unwrap().inverted.as_ref().unwrap();
        assert_eq!(inv.cardinality(), orig.cardinality());
        for i in 0..inv.cardinality() as u32 {
            assert_eq!(inv.postings(i).to_vec(), orig.postings(i).to_vec());
        }
        // Bloom filter survived bit for bit, and stats reflect it.
        assert_eq!(
            back.column("country").unwrap().bloom,
            seg.column("country").unwrap().bloom
        );
        assert!(back.metadata().column("country").unwrap().has_bloom_filter);
        assert_eq!(
            back.column("country")
                .unwrap()
                .bloom_contains(&Value::from("c3")),
            Some(true)
        );
    }

    #[test]
    fn v1_blobs_load_with_blooms_absent() {
        let seg = build_segment();
        let v1 = serialize_with_version(&seg, 1);
        assert_eq!(u16::from_le_bytes([v1[4], v1[5]]), 1);
        let back = deserialize(&v1).unwrap();
        // Data and indexes intact; bloom stats degrade to absent.
        assert_eq!(back.num_docs(), seg.num_docs());
        for doc in (0..seg.num_docs()).step_by(97) {
            assert_eq!(back.record(doc), seg.record(doc));
        }
        assert!(back.column("country").unwrap().bloom.is_none());
        assert!(!back.metadata().column("country").unwrap().has_bloom_filter);
        // Min/max zone maps still restore from the dictionaries.
        assert!(back.metadata().column("clicks").unwrap().min.is_some());
    }

    #[test]
    fn rejects_corrupted_blob() {
        let seg = build_segment();
        let blob = serialize(&seg);
        // Truncation
        assert!(deserialize(&blob[..blob.len() / 2]).is_err());
        // Bit flip in payload breaks the checksum
        let mut bad = blob.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(deserialize(&bad).is_err());
        // Bad magic
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(deserialize(&bad).is_err());
        // Bad version
        let mut bad = blob;
        bad[4] = 99;
        assert!(deserialize(&bad).is_err());
    }

    #[test]
    fn empty_segment_round_trips() {
        let schema = Schema::new("t", vec![FieldSpec::dimension("a", DataType::Int)]).unwrap();
        let b = SegmentBuilder::new(schema, BuilderConfig::new("e", "t")).unwrap();
        let seg = b.build().unwrap();
        let back = deserialize(&serialize(&seg)).unwrap();
        assert_eq!(back.num_docs(), 0);
    }
}
