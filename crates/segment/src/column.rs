//! One column of an immutable segment: dictionary + forward index +
//! optional inverted / sorted indexes.

use crate::bloom::BloomFilter;
use crate::dictionary::Dictionary;
use crate::forward::ForwardIndex;
use crate::inverted::InvertedIndex;
use crate::metadata::ColumnStats;
use crate::sorted_index::SortedIndex;
use crate::{DictId, DocId};
use pinot_common::{FieldSpec, Value};
use std::sync::Arc;

/// Column storage plus its indexes.
///
/// The dictionary is behind an `Arc` so realtime consistent cuts can share
/// one sorted dictionary between the live mutable column and any number of
/// immutable cut views without copying values.
#[derive(Debug, Clone)]
pub struct ColumnData {
    pub spec: FieldSpec,
    pub dictionary: Arc<Dictionary>,
    pub forward: ForwardIndex,
    pub inverted: Option<InvertedIndex>,
    pub sorted: Option<SortedIndex>,
    /// Membership filter over the column's distinct values (configured
    /// dimension columns only; absent on segments persisted before v2).
    pub bloom: Option<BloomFilter>,
}

impl ColumnData {
    /// Dictionary id for a single-value doc.
    #[inline]
    pub fn dict_id(&self, doc: DocId) -> DictId {
        self.forward.get(doc)
    }

    /// Value of a single-value doc.
    pub fn value(&self, doc: DocId) -> Value {
        if self.forward.is_single_value() {
            self.dictionary.value_of(self.forward.get(doc))
        } else {
            let mut ids = Vec::new();
            self.forward.get_multi(doc, &mut ids);
            let elems: Vec<Value> = ids.iter().map(|&i| self.dictionary.value_of(i)).collect();
            // Re-wrap as the appropriate array value.
            match elems.first() {
                Some(Value::Int(_)) => Value::IntArray(
                    elems
                        .iter()
                        .filter_map(|v| v.as_i64().map(|x| x as i32))
                        .collect(),
                ),
                Some(Value::Long(_)) => {
                    Value::LongArray(elems.iter().filter_map(|v| v.as_i64()).collect())
                }
                Some(Value::String(_)) => Value::StringArray(
                    elems
                        .iter()
                        .filter_map(|v| v.as_str().map(str::to_string))
                        .collect(),
                ),
                _ => Value::Null,
            }
        }
    }

    /// Numeric value of a single-value doc (aggregation fast path).
    #[inline]
    pub fn numeric(&self, doc: DocId) -> Option<f64> {
        self.dictionary.numeric_of(self.forward.get(doc))
    }

    /// Integer value of a single-value doc (time-column fast path).
    #[inline]
    pub fn long(&self, doc: DocId) -> Option<i64> {
        self.dictionary.long_of(self.forward.get(doc))
    }

    /// Build (or rebuild) the inverted index for this column. Pinot servers
    /// can create inverted indexes on demand because the index file is
    /// append-only (§3.2); the in-memory analogue is this method.
    pub fn ensure_inverted(&mut self) {
        if self.inverted.is_none() {
            self.inverted = Some(InvertedIndex::build(
                &self.forward,
                self.dictionary.cardinality(),
            ));
        }
    }

    /// Bloom membership for an exact value: `Some(false)` proves the value
    /// appears nowhere in the column. `None` when the column has no bloom
    /// filter or the value cannot coerce into the column's type.
    pub fn bloom_contains(&self, value: &Value) -> Option<bool> {
        self.bloom
            .as_ref()?
            .might_contain_value(value, self.spec.data_type)
    }

    pub fn stats(&self) -> ColumnStats {
        ColumnStats {
            name: self.spec.name.clone(),
            data_type: self.spec.data_type,
            single_value: self.forward.is_single_value(),
            cardinality: self.dictionary.cardinality(),
            min: self.dictionary.min_value(),
            max: self.dictionary.max_value(),
            total_entries: self.forward.num_entries(),
            has_inverted_index: self.inverted.is_some(),
            is_sorted: self.sorted.is_some(),
            has_bloom_filter: self.bloom.is_some(),
        }
    }

    pub fn size_bytes(&self) -> usize {
        self.dictionary.size_bytes()
            + self.forward.size_bytes()
            + self.inverted.as_ref().map_or(0, InvertedIndex::size_bytes)
            + self.sorted.as_ref().map_or(0, SortedIndex::size_bytes)
            + self.bloom.as_ref().map_or(0, BloomFilter::size_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_common::DataType;

    fn string_column(values: &[&str]) -> ColumnData {
        let dict = Dictionary::build(DataType::String, values.iter().map(|s| Value::from(*s)));
        let ids: Vec<DictId> = values
            .iter()
            .map(|s| dict.id_of(&Value::from(*s)).unwrap())
            .collect();
        ColumnData {
            spec: FieldSpec::dimension("c", DataType::String),
            dictionary: Arc::new(dict),
            forward: ForwardIndex::single(&ids),
            inverted: None,
            sorted: None,
            bloom: None,
        }
    }

    #[test]
    fn value_round_trip() {
        let col = string_column(&["b", "a", "b"]);
        assert_eq!(col.value(0), Value::from("b"));
        assert_eq!(col.value(1), Value::from("a"));
        assert_eq!(col.dict_id(0), col.dict_id(2));
    }

    #[test]
    fn ensure_inverted_is_idempotent() {
        let mut col = string_column(&["x", "y", "x"]);
        assert!(col.inverted.is_none());
        col.ensure_inverted();
        let first = col.inverted.clone().unwrap();
        col.ensure_inverted();
        assert_eq!(col.inverted.unwrap(), first);
        assert_eq!(first.postings(0).to_vec(), vec![0, 2]); // "x"
    }

    #[test]
    fn stats_reflect_indexes() {
        let mut col = string_column(&["m", "n"]);
        let s = col.stats();
        assert_eq!(s.cardinality, 2);
        assert!(!s.has_inverted_index);
        col.ensure_inverted();
        assert!(col.stats().has_inverted_index);
        assert_eq!(col.stats().min, Some(Value::from("m")));
    }

    #[test]
    fn multivalue_value_reconstruction() {
        let dict = Dictionary::build(DataType::Int, [1, 2, 3].map(Value::from));
        let ids = vec![vec![0u32, 2], vec![1]];
        let col = ColumnData {
            spec: FieldSpec::multi_value_dimension("mv", DataType::Int),
            dictionary: Arc::new(dict),
            forward: ForwardIndex::multi(&ids),
            inverted: None,
            sorted: None,
            bloom: None,
        };
        assert_eq!(col.value(0), Value::IntArray(vec![1, 3]));
        assert_eq!(col.value(1), Value::IntArray(vec![2]));
    }
}
