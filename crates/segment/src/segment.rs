//! The immutable segment.

use crate::column::ColumnData;
use crate::metadata::SegmentMetadata;
use crate::DocId;
use pinot_common::{PinotError, Result, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable, query-ready segment: columnar data plus metadata.
///
/// Segments are shared across query threads behind `Arc`; all access is
/// read-only after construction (reindexing produces a new segment).
#[derive(Debug, Clone)]
pub struct ImmutableSegment {
    metadata: SegmentMetadata,
    schema: Schema,
    columns: Vec<ColumnData>,
    by_name: HashMap<String, usize>,
}

impl ImmutableSegment {
    pub(crate) fn new(
        metadata: SegmentMetadata,
        schema: Schema,
        columns: Vec<ColumnData>,
    ) -> ImmutableSegment {
        let by_name = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.spec.name.clone(), i))
            .collect();
        ImmutableSegment {
            metadata,
            schema,
            columns,
            by_name,
        }
    }

    pub fn name(&self) -> &str {
        &self.metadata.segment_name
    }

    pub fn metadata(&self) -> &SegmentMetadata {
        &self.metadata
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_docs(&self) -> u32 {
        self.metadata.num_docs
    }

    pub fn column(&self, name: &str) -> Result<&ColumnData> {
        self.by_name
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| PinotError::Schema(format!("unknown column {name:?}")))
    }

    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Reconstruct one full record (selection queries, purge tasks).
    pub fn record(&self, doc: DocId) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(doc)).collect()
    }

    /// Produce a copy of this segment with an inverted index added to the
    /// given column (the minion/server reindex path). Metadata is refreshed.
    pub fn with_inverted_index(&self, column: &str) -> Result<ImmutableSegment> {
        let mut columns = self.columns.clone();
        let idx = *self
            .by_name
            .get(column)
            .ok_or_else(|| PinotError::Schema(format!("unknown column {column:?}")))?;
        columns[idx].ensure_inverted();
        let mut metadata = self.metadata.clone();
        metadata.columns = columns.iter().map(ColumnData::stats).collect();
        metadata.size_bytes = columns.iter().map(ColumnData::size_bytes).sum::<usize>() as u64;
        Ok(ImmutableSegment::new(
            metadata,
            self.schema.clone(),
            columns,
        ))
    }

    pub fn size_bytes(&self) -> u64 {
        self.metadata.size_bytes
    }
}

/// Shared handle used throughout query execution.
pub type SegmentRef = Arc<ImmutableSegment>;
