//! Building immutable segments from records.

use crate::column::ColumnData;
use crate::dictionary::Dictionary;
use crate::forward::ForwardIndex;
use crate::inverted::InvertedIndex;
use crate::metadata::{PartitionInfo, SegmentMetadata};
use crate::segment::ImmutableSegment;
use crate::sorted_index::SortedIndex;
use crate::DictId;
use pinot_common::{FieldSpec, PinotError, Record, Result, Schema, Value};

/// Options controlling segment construction.
#[derive(Debug, Clone)]
pub struct BuilderConfig {
    pub segment_name: String,
    pub table: String,
    /// Physically reorder records by these columns (primary first, §4.2).
    /// The primary column gets a [`SortedIndex`] instead of bitmaps.
    pub sort_columns: Vec<String>,
    /// Columns to build bitmap inverted indexes for.
    pub inverted_columns: Vec<String>,
    /// Columns to build blocked bloom filters for (dimension pruning).
    pub bloom_columns: Vec<String>,
    /// Bits per distinct key for bloom filters.
    pub bloom_bits_per_key: u32,
    pub partition: Option<PartitionInfo>,
    /// Stream offsets `[start, end)` for realtime-committed segments.
    pub offset_range: Option<(u64, u64)>,
    pub created_at_millis: i64,
}

impl BuilderConfig {
    pub fn new(segment_name: impl Into<String>, table: impl Into<String>) -> BuilderConfig {
        BuilderConfig {
            segment_name: segment_name.into(),
            table: table.into(),
            sort_columns: Vec::new(),
            inverted_columns: Vec::new(),
            bloom_columns: Vec::new(),
            bloom_bits_per_key: crate::bloom::DEFAULT_BITS_PER_KEY,
            partition: None,
            offset_range: None,
            created_at_millis: 0,
        }
    }

    pub fn with_sort_columns(mut self, cols: &[&str]) -> BuilderConfig {
        self.sort_columns = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_inverted_columns(mut self, cols: &[&str]) -> BuilderConfig {
        self.inverted_columns = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_bloom_columns(mut self, cols: &[&str]) -> BuilderConfig {
        self.bloom_columns = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_partition(mut self, p: PartitionInfo) -> BuilderConfig {
        self.partition = Some(p);
        self
    }

    pub fn with_offset_range(mut self, start: u64, end: u64) -> BuilderConfig {
        self.offset_range = Some((start, end));
        self
    }
}

/// Accumulates records and produces an [`ImmutableSegment`].
pub struct SegmentBuilder {
    schema: Schema,
    config: BuilderConfig,
    rows: Vec<Vec<Value>>,
}

impl SegmentBuilder {
    pub fn new(schema: Schema, config: BuilderConfig) -> Result<SegmentBuilder> {
        for col in &config.sort_columns {
            let spec = schema
                .field(col)
                .ok_or_else(|| PinotError::Schema(format!("sort column {col:?} not in schema")))?;
            if !spec.single_value {
                return Err(PinotError::Schema(format!(
                    "sort column {col:?} must be single-value"
                )));
            }
        }
        for col in &config.inverted_columns {
            if schema.field(col).is_none() {
                return Err(PinotError::Schema(format!(
                    "inverted-index column {col:?} not in schema"
                )));
            }
        }
        for col in &config.bloom_columns {
            if schema.field(col).is_none() {
                return Err(PinotError::Schema(format!(
                    "bloom-filter column {col:?} not in schema"
                )));
            }
        }
        Ok(SegmentBuilder {
            schema,
            config,
            rows: Vec::new(),
        })
    }

    /// Append one record (validated and null-filled against the schema).
    pub fn add(&mut self, record: Record) -> Result<()> {
        let normalized = record.normalize(&self.schema)?;
        self.rows.push(normalized.into_values());
        Ok(())
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Build the immutable segment. Consumes the builder.
    pub fn build(self) -> Result<ImmutableSegment> {
        self.build_with_pool(None)
    }

    /// Like [`build`](SegmentBuilder::build), but fans per-column
    /// dictionary/index construction out as tasks on `pool`. Column order in
    /// the finished segment is schema order regardless of completion order.
    pub fn build_with_pool(
        self,
        pool: Option<&pinot_taskpool::TaskPool>,
    ) -> Result<ImmutableSegment> {
        let SegmentBuilder {
            schema,
            config,
            mut rows,
        } = self;

        // 1. Physical reorder by the configured sort columns.
        if !config.sort_columns.is_empty() {
            let sort_idx: Vec<usize> = config
                .sort_columns
                .iter()
                .map(|c| schema.column_index(c).expect("validated in new()"))
                .collect();
            rows.sort_by(|a, b| {
                for &i in &sort_idx {
                    let ord = a[i].total_cmp(&b[i]);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        // 2. Per-column dictionaries and indexes, one pool task per column
        //    when a pool is supplied.
        let num_docs = rows.len();
        let columns: Vec<ColumnData> = match pool {
            Some(pool) => {
                let slots: Vec<parking_lot::Mutex<Option<Result<ColumnData>>>> =
                    schema.fields().iter().map(|_| Default::default()).collect();
                pool.scope(|scope| {
                    for (ci, spec) in schema.fields().iter().enumerate() {
                        let (slot, rows, config) = (&slots[ci], &rows, &config);
                        scope.spawn(move || {
                            *slot.lock() = Some(build_column(rows, ci, spec, config, num_docs));
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().expect("scope joined every column task"))
                    .collect::<Result<_>>()?
            }
            None => schema
                .fields()
                .iter()
                .enumerate()
                .map(|(ci, spec)| build_column(&rows, ci, spec, &config, num_docs))
                .collect::<Result<_>>()?,
        };

        // 5. Metadata.
        let time_column = schema.time_column().map(|f| f.name.clone());
        let (min_time, max_time) = match &time_column {
            Some(tc) => {
                let col = columns
                    .iter()
                    .find(|c| &c.spec.name == tc)
                    .expect("time column built");
                (
                    col.dictionary.min_value().and_then(|v| v.as_i64()),
                    col.dictionary.max_value().and_then(|v| v.as_i64()),
                )
            }
            None => (None, None),
        };
        let size_bytes = columns.iter().map(ColumnData::size_bytes).sum::<usize>() as u64;
        let metadata = SegmentMetadata {
            segment_name: config.segment_name,
            table: config.table,
            num_docs: num_docs as u32,
            columns: columns.iter().map(ColumnData::stats).collect(),
            time_column,
            min_time,
            max_time,
            partition: config.partition,
            offset_range: config.offset_range,
            created_at_millis: config.created_at_millis,
            size_bytes,
        };
        Ok(ImmutableSegment::new(metadata, schema, columns))
    }
}

/// Dictionary, forward, sorted, and inverted structures for one column.
/// Independent per column, which is what makes pooled builds safe.
fn build_column(
    rows: &[Vec<Value>],
    ci: usize,
    spec: &FieldSpec,
    config: &BuilderConfig,
    num_docs: usize,
) -> Result<ColumnData> {
    let dictionary = Dictionary::build(spec.data_type, rows.iter().flat_map(|r| r[ci].elements()));
    let forward = if spec.single_value {
        let ids: Vec<DictId> = rows
            .iter()
            .map(|r| {
                dictionary.id_of(&r[ci]).ok_or_else(|| {
                    PinotError::Internal(format!(
                        "value missing from own dictionary in column {}",
                        spec.name
                    ))
                })
            })
            .collect::<Result<_>>()?;
        ForwardIndex::single(&ids)
    } else {
        let per_doc: Vec<Vec<DictId>> = rows
            .iter()
            .map(|r| {
                r[ci]
                    .elements()
                    .iter()
                    .map(|e| {
                        dictionary.id_of(e).ok_or_else(|| {
                            PinotError::Internal(format!(
                                "element missing from dictionary in column {}",
                                spec.name
                            ))
                        })
                    })
                    .collect::<Result<_>>()
            })
            .collect::<Result<_>>()?;
        ForwardIndex::multi(&per_doc)
    };

    // Sorted index for the primary sort column.
    let sorted = if config.sort_columns.first() == Some(&spec.name) {
        let ids: Vec<DictId> = (0..num_docs as u32).map(|d| forward.get(d)).collect();
        SortedIndex::build(&ids, dictionary.cardinality())
    } else {
        None
    };

    // Inverted indexes where configured (skip if sorted: the sorted index
    // strictly dominates, §4.2).
    let inverted = if sorted.is_none() && config.inverted_columns.contains(&spec.name) {
        Some(InvertedIndex::build(&forward, dictionary.cardinality()))
    } else {
        None
    };

    // Bloom filter over the distinct values of configured columns.
    let bloom = if config.bloom_columns.contains(&spec.name) {
        let mut f = crate::bloom::BloomFilter::new(
            dictionary.cardinality(),
            config.bloom_bits_per_key,
            crate::bloom::DEFAULT_SEED,
        );
        for id in 0..dictionary.cardinality() as DictId {
            if let Some(key) = crate::bloom::bloom_key(&dictionary.value_of(id), spec.data_type) {
                f.insert(&key);
            }
        }
        Some(f)
    } else {
        None
    };

    Ok(ColumnData {
        spec: spec.clone(),
        dictionary: std::sync::Arc::new(dictionary),
        forward,
        inverted,
        sorted,
        bloom,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_common::{DataType, FieldSpec, TimeUnit};

    fn schema() -> Schema {
        Schema::new(
            "events",
            vec![
                FieldSpec::dimension("viewee", DataType::Long),
                FieldSpec::dimension("country", DataType::String),
                FieldSpec::metric("views", DataType::Long),
                FieldSpec::time("day", DataType::Long, TimeUnit::Days),
            ],
        )
        .unwrap()
    }

    fn record(s: &Schema, viewee: i64, country: &str, views: i64, day: i64) -> Record {
        Record::from_pairs(
            s,
            &[
                ("viewee", Value::Long(viewee)),
                ("country", Value::from(country)),
                ("views", Value::Long(views)),
                ("day", Value::Long(day)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_sorted_segment() {
        let s = schema();
        let cfg = BuilderConfig::new("seg1", "events_OFFLINE")
            .with_sort_columns(&["viewee", "day"])
            .with_inverted_columns(&["country"]);
        let mut b = SegmentBuilder::new(s.clone(), cfg).unwrap();
        for (v, c, n, d) in [
            (30i64, "us", 1i64, 3i64),
            (10, "de", 2, 1),
            (20, "us", 3, 2),
            (10, "us", 4, 2),
        ] {
            b.add(record(&s, v, c, n, d)).unwrap();
        }
        let seg = b.build().unwrap();
        assert_eq!(seg.num_docs(), 4);

        // Physically sorted by viewee, then day.
        let viewee = seg.column("viewee").unwrap();
        let order: Vec<i64> = (0..4).map(|d| viewee.long(d).unwrap()).collect();
        assert_eq!(order, vec![10, 10, 20, 30]);
        assert!(viewee.sorted.is_some());
        assert!(viewee.inverted.is_none());

        // Secondary sort kicked in for equal viewees.
        let day = seg.column("day").unwrap();
        assert_eq!(day.long(0).unwrap(), 1);
        assert_eq!(day.long(1).unwrap(), 2);

        // Inverted index present on country only.
        assert!(seg.column("country").unwrap().inverted.is_some());
        assert!(seg.column("views").unwrap().inverted.is_none());

        // Metadata captures time range and sortedness.
        let m = seg.metadata();
        assert_eq!(m.min_time, Some(1));
        assert_eq!(m.max_time, Some(3));
        assert!(m.column("viewee").unwrap().is_sorted);
        assert!(m.column("country").unwrap().has_inverted_index);
    }

    #[test]
    fn sorted_index_ranges_are_correct() {
        let s = schema();
        let cfg = BuilderConfig::new("seg", "t").with_sort_columns(&["viewee"]);
        let mut b = SegmentBuilder::new(s.clone(), cfg).unwrap();
        for v in [5i64, 5, 3, 9, 3, 3] {
            b.add(record(&s, v, "us", 1, 1)).unwrap();
        }
        let seg = b.build().unwrap();
        let col = seg.column("viewee").unwrap();
        let sorted = col.sorted.as_ref().unwrap();
        // dict order: 3 (id 0), 5 (id 1), 9 (id 2)
        assert_eq!(sorted.doc_range(0), (0, 3));
        assert_eq!(sorted.doc_range(1), (3, 5));
        assert_eq!(sorted.doc_range(2), (5, 6));
    }

    #[test]
    fn empty_segment_is_valid() {
        let s = schema();
        let b = SegmentBuilder::new(s, BuilderConfig::new("e", "t")).unwrap();
        let seg = b.build().unwrap();
        assert_eq!(seg.num_docs(), 0);
        assert_eq!(seg.metadata().min_time, None);
    }

    #[test]
    fn validates_config_columns() {
        let s = schema();
        assert!(SegmentBuilder::new(
            s.clone(),
            BuilderConfig::new("x", "t").with_sort_columns(&["nope"])
        )
        .is_err());
        assert!(SegmentBuilder::new(
            s,
            BuilderConfig::new("x", "t").with_inverted_columns(&["nope"])
        )
        .is_err());
    }

    #[test]
    fn bloom_columns_build_and_answer_membership() {
        let s = schema();
        let cfg = BuilderConfig::new("seg", "t").with_bloom_columns(&["country"]);
        let mut b = SegmentBuilder::new(s.clone(), cfg).unwrap();
        for c in ["us", "de", "fr"] {
            b.add(record(&s, 1, c, 1, 1)).unwrap();
        }
        let seg = b.build().unwrap();
        let country = seg.column("country").unwrap();
        assert!(country.bloom.is_some());
        assert_eq!(country.bloom_contains(&Value::from("de")), Some(true));
        // Columns without a configured bloom answer None.
        assert_eq!(
            seg.column("views").unwrap().bloom_contains(&Value::Long(1)),
            None
        );
        assert!(seg.metadata().column("country").unwrap().has_bloom_filter);
        // Unknown bloom column is a config error.
        assert!(SegmentBuilder::new(
            s,
            BuilderConfig::new("x", "t").with_bloom_columns(&["nope"])
        )
        .is_err());
    }

    #[test]
    fn rejects_bad_records() {
        let s = schema();
        let mut b = SegmentBuilder::new(s.clone(), BuilderConfig::new("x", "t")).unwrap();
        let bad = Record::new(vec![Value::Long(1)]); // wrong arity
        assert!(b.add(bad).is_err());
    }

    #[test]
    fn multivalue_column_builds() {
        let s = Schema::new(
            "t",
            vec![
                FieldSpec::dimension("k", DataType::Long),
                FieldSpec::multi_value_dimension("tags", DataType::String),
            ],
        )
        .unwrap();
        let mut b = SegmentBuilder::new(
            s.clone(),
            BuilderConfig::new("seg", "t").with_inverted_columns(&["tags"]),
        )
        .unwrap();
        b.add(Record::new(vec![
            Value::Long(1),
            Value::StringArray(vec!["a".into(), "b".into()]),
        ]))
        .unwrap();
        b.add(Record::new(vec![
            Value::Long(2),
            Value::StringArray(vec!["b".into()]),
        ]))
        .unwrap();
        let seg = b.build().unwrap();
        let tags = seg.column("tags").unwrap();
        let inv = tags.inverted.as_ref().unwrap();
        let b_id = tags.dictionary.id_of(&Value::from("b")).unwrap();
        assert_eq!(inv.postings(b_id).to_vec(), vec![0, 1]);
        assert_eq!(
            tags.value(0),
            Value::StringArray(vec!["a".into(), "b".into()])
        );
    }

    #[test]
    fn record_reconstruction() {
        let s = schema();
        let mut b = SegmentBuilder::new(s.clone(), BuilderConfig::new("x", "t")).unwrap();
        b.add(record(&s, 1, "fr", 9, 100)).unwrap();
        let seg = b.build().unwrap();
        assert_eq!(
            seg.record(0),
            vec![
                Value::Long(1),
                Value::String("fr".into()),
                Value::Long(9),
                Value::Long(100)
            ]
        );
    }
}
