//! Columnar segment format (§3.1, Figure 1 of the paper).
//!
//! A *segment* is an immutable collection of records stored column-wise.
//! Every column is dictionary encoded: the dictionary holds the sorted
//! distinct values, and the *forward index* stores one bit-packed dictionary
//! id per document (or a list of ids for multi-value columns). On top of
//! that, a column may carry:
//!
//! * a **bitmap inverted index** — one roaring bitmap of document ids per
//!   dictionary id;
//! * a **sorted-column index** — when the segment's records are physically
//!   ordered by this column, each dictionary id maps to one contiguous
//!   `(start, end)` document range (§4.2), which replaces bitmaps entirely
//!   and lets downstream operators work on one contiguous range.
//!
//! [`builder::SegmentBuilder`] creates immutable segments from records
//! (sorting them physically when a sort column is configured).
//! [`mutable::MutableSegment`] is the realtime consuming segment: it stores
//! appends columnar from the start ([`realtime`]), serves queries through
//! cheap consistent cuts, and seals into an immutable segment directly from
//! the columnar store when the completion protocol commits it.
//! [`persist`] provides the on-disk/object-store binary format.

pub mod bitpack;
pub mod bloom;
pub mod builder;
pub mod column;
pub mod dictionary;
pub mod forward;
pub mod inverted;
pub mod metadata;
pub mod mutable;
pub mod persist;
pub mod realtime;
pub mod segment;
pub mod sorted_index;

pub use bloom::BloomFilter;
pub use builder::SegmentBuilder;
pub use column::ColumnData;
pub use dictionary::Dictionary;
pub use metadata::{ColumnStats, SegmentMetadata};
pub use mutable::{realtime_columnar_default, MutableSegment};
pub use segment::ImmutableSegment;

/// Document id within one segment.
pub type DocId = u32;
/// Dictionary id within one column.
pub type DictId = u32;
