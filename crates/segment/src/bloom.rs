//! Blocked bloom filters for dimension columns.
//!
//! Built at seal time over a column's *distinct* values (the dictionary),
//! so membership answers "might this exact value appear anywhere in the
//! segment". The filter is blocked: keys hash to one 512-bit (cache-line)
//! block and all probe bits land inside it, so a negative membership test
//! costs one cache line regardless of the number of hash functions.
//!
//! Guarantees: no false negatives by construction (every inserted key sets
//! exactly the bits a later probe reads); the false-positive rate tracks
//! the classic `0.6185^bits_per_key` bound, slightly degraded by blocking
//! (the proptests pin it under 2× the target).

use pinot_common::{DataType, Value};

/// Bits per block: one cache line, fixed by the format.
const BLOCK_BITS: u64 = 512;
const BLOCK_WORDS: usize = (BLOCK_BITS / 64) as usize;

/// Default sizing for configured bloom columns.
pub const DEFAULT_BITS_PER_KEY: u32 = 10;
/// Default hash seed (mixed into every key hash; segments could vary it).
pub const DEFAULT_SEED: u64 = 0x5165_7a6f_6e65_4d61; // "QeZoneMa"

/// A blocked bloom filter over canonical key bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct BloomFilter {
    seed: u64,
    bits_per_key: u32,
    num_hashes: u32,
    num_keys: u64,
    words: Vec<u64>,
}

impl BloomFilter {
    /// Filter sized for `expected_keys` at `bits_per_key` bits each.
    pub fn new(expected_keys: usize, bits_per_key: u32, seed: u64) -> BloomFilter {
        let bits_per_key = bits_per_key.clamp(1, 64);
        let total_bits = (expected_keys as u64).saturating_mul(bits_per_key as u64);
        let num_blocks = total_bits.div_ceil(BLOCK_BITS).max(1);
        // k ≈ bits_per_key · ln 2, the classic optimum.
        let num_hashes = ((bits_per_key as f64 * 0.69).round() as u32).clamp(1, 16);
        BloomFilter {
            seed,
            bits_per_key,
            num_hashes,
            num_keys: 0,
            words: vec![0u64; num_blocks as usize * BLOCK_WORDS],
        }
    }

    /// Rebuild from persisted parts (see `persist`).
    pub fn from_parts(
        seed: u64,
        bits_per_key: u32,
        num_hashes: u32,
        num_keys: u64,
        words: Vec<u64>,
    ) -> BloomFilter {
        BloomFilter {
            seed,
            bits_per_key,
            num_hashes,
            num_keys,
            words,
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn bits_per_key(&self) -> u32 {
        self.bits_per_key
    }

    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    pub fn num_keys(&self) -> u64 {
        self.num_keys
    }

    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Configured false-positive target: the classic optimum for this
    /// `bits_per_key` (blocking degrades it a little; tests allow 2×).
    pub fn target_fp_rate(&self) -> f64 {
        0.6185f64.powi(self.bits_per_key as i32)
    }

    fn num_blocks(&self) -> u64 {
        (self.words.len() / BLOCK_WORDS) as u64
    }

    /// Block index plus the two in-block probe hashes for a key.
    fn probe(&self, key: &[u8]) -> (usize, u64, u64) {
        let h = mix64(fnv64(key) ^ self.seed);
        let g = mix64(h ^ 0x9e37_79b9_7f4a_7c15);
        // Multiply-shift maps the high half uniformly onto blocks.
        let block = (((h >> 32) * self.num_blocks()) >> 32) as usize;
        (block * BLOCK_WORDS, g, (g >> 32) | 1)
    }

    /// Insert a canonical key.
    pub fn insert(&mut self, key: &[u8]) {
        let (base, mut bit, delta) = self.probe(key);
        for _ in 0..self.num_hashes {
            let b = bit % BLOCK_BITS;
            self.words[base + (b / 64) as usize] |= 1u64 << (b % 64);
            bit = bit.wrapping_add(delta);
        }
        self.num_keys += 1;
    }

    /// Membership test: false means the key is definitely absent.
    pub fn might_contain(&self, key: &[u8]) -> bool {
        let (base, mut bit, delta) = self.probe(key);
        for _ in 0..self.num_hashes {
            let b = bit % BLOCK_BITS;
            if self.words[base + (b / 64) as usize] & (1u64 << (b % 64)) == 0 {
                return false;
            }
            bit = bit.wrapping_add(delta);
        }
        true
    }

    /// Membership test for a typed value against a column of `data_type`.
    /// `None` when the value cannot coerce into the column's type (the
    /// dictionary would match nothing either, but callers stay
    /// conservative and treat it as unknown).
    pub fn might_contain_value(&self, value: &Value, data_type: DataType) -> Option<bool> {
        bloom_key(value, data_type).map(|k| self.might_contain(&k))
    }

    /// Approximate heap bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.len() * 8
    }
}

/// Canonical key bytes for a value probed against a column of
/// `data_type`. Mirrors `Dictionary::id_of`'s coercion rules exactly so a
/// bloom negative can never contradict a dictionary hit: integer columns
/// key on `as_i64` (floats rejected), float columns key through the
/// column's own width, strings and booleans key on their exact type.
pub fn bloom_key(value: &Value, data_type: DataType) -> Option<Vec<u8>> {
    match data_type {
        DataType::Int => {
            let x = value.as_i64()?;
            if x < i32::MIN as i64 || x > i32::MAX as i64 {
                return None;
            }
            Some(x.to_le_bytes().to_vec())
        }
        DataType::Long => Some(value.as_i64()?.to_le_bytes().to_vec()),
        DataType::Float => {
            let x = value.as_f64()? as f32;
            Some(((x as f64).to_bits()).to_le_bytes().to_vec())
        }
        DataType::Double => Some(value.as_f64()?.to_bits().to_le_bytes().to_vec()),
        DataType::String => Some(value.as_str()?.as_bytes().to_vec()),
        DataType::Boolean => match value {
            Value::Boolean(b) => Some(vec![*b as u8]),
            _ => None,
        },
    }
}

/// FNV-1a over the key bytes (seeded separately in `probe`).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: avalanches the raw FNV state.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<String> = (0..1000).map(|i| format!("key-{i}")).collect();
        let mut f = BloomFilter::new(keys.len(), DEFAULT_BITS_PER_KEY, DEFAULT_SEED);
        for k in &keys {
            f.insert(k.as_bytes());
        }
        for k in &keys {
            assert!(f.might_contain(k.as_bytes()), "{k}");
        }
        assert_eq!(f.num_keys(), 1000);
    }

    #[test]
    fn fp_rate_near_target() {
        let n = 4000;
        let mut f = BloomFilter::new(n, DEFAULT_BITS_PER_KEY, DEFAULT_SEED);
        for i in 0..n {
            f.insert(format!("present-{i}").as_bytes());
        }
        let probes = 20_000;
        let fps = (0..probes)
            .filter(|i| f.might_contain(format!("absent-{i}").as_bytes()))
            .count();
        let rate = fps as f64 / probes as f64;
        assert!(
            rate < 2.0 * f.target_fp_rate(),
            "fp rate {rate} vs target {}",
            f.target_fp_rate()
        );
    }

    #[test]
    fn typed_keys_follow_dictionary_coercion() {
        let mut f = BloomFilter::new(16, 10, 7);
        f.insert(&bloom_key(&Value::Long(42), DataType::Long).unwrap());
        // Int probes coerce into long columns, like `Dictionary::id_of`.
        assert_eq!(
            f.might_contain_value(&Value::Int(42), DataType::Long),
            Some(true)
        );
        // Floats never coerce into integer columns.
        assert_eq!(
            f.might_contain_value(&Value::Double(42.0), DataType::Long),
            None
        );
        // Float columns hash through f32, so a wider double that rounds to
        // the same f32 still hits.
        let mut g = BloomFilter::new(16, 10, 7);
        g.insert(&bloom_key(&Value::Float(0.25), DataType::Float).unwrap());
        assert_eq!(
            g.might_contain_value(&Value::Double(0.25), DataType::Float),
            Some(true)
        );
    }

    #[test]
    fn tiny_and_empty_filters_work() {
        let f = BloomFilter::new(0, 10, 1);
        assert!(!f.might_contain(b"anything"));
        let mut g = BloomFilter::new(1, 1, 1);
        g.insert(b"x");
        assert!(g.might_contain(b"x"));
    }

    #[test]
    fn parts_round_trip() {
        let mut f = BloomFilter::new(100, 12, 99);
        for i in 0..100 {
            f.insert(format!("v{i}").as_bytes());
        }
        let g = BloomFilter::from_parts(
            f.seed(),
            f.bits_per_key(),
            f.num_hashes(),
            f.num_keys(),
            f.words().to_vec(),
        );
        assert_eq!(f, g);
    }
}
