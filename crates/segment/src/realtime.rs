//! Columnar storage internals of a consuming segment.
//!
//! Each column of a consuming segment keeps an *insertion-ordered* mutable
//! dictionary (value → id in first-seen order) and a chunked forward vector
//! of insertion ids: sealed fixed-size bit-packed chunks shared by `Arc`
//! plus a row-wise tail for the open chunk. A consistent cut translates
//! insertion ids to sorted-dictionary ids through a cached `remap`, giving
//! queries the exact same sorted-dictionary semantics as offline segments
//! (range predicates → contiguous id intervals, exact zone maps) without
//! rebuilding anything row-wise.
//!
//! Invariant relied on by truncation: insertion ids are dense and assigned
//! in first-seen order, so the ids referenced by the first `k` rows are
//! exactly `0..=max_referenced_id` — rolling back the dictionary is a
//! truncate, never a compaction.

use crate::bitpack::PackedIntVec;
use crate::bloom;
use crate::builder::BuilderConfig;
use crate::column::ColumnData;
use crate::dictionary::Dictionary;
use crate::forward::{ForwardIndex, CHUNK_ROWS};
use crate::inverted::InvertedIndex;
use crate::metadata::SegmentMetadata;
use crate::segment::ImmutableSegment;
use crate::sorted_index::SortedIndex;
use crate::DictId;
use pinot_common::{DataType, FieldSpec, PinotError, Result, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Hash key for one distinct value. Numeric keys coerce the same way
/// [`Dictionary::build`] does (schema validation admits INT values into
/// LONG columns and FLOAT into DOUBLE, so `Int(5)` and `Long(5)` must
/// intern to one id); floats key by bit pattern, which matches the
/// `total_cmp` dedup of the sorted dictionary exactly (NaN payloads and
/// signed zeros stay distinct in both).
#[derive(PartialEq, Eq, Hash)]
enum DictKey {
    I64(i64),
    F32(u32),
    F64(u64),
    Str(String),
    Bool(bool),
}

fn key_of(data_type: DataType, v: &Value) -> Option<DictKey> {
    match data_type {
        DataType::Int => v.as_i64().map(|x| DictKey::I64(x as i32 as i64)),
        DataType::Long => v.as_i64().map(DictKey::I64),
        DataType::Float => v.as_f64().map(|x| DictKey::F32((x as f32).to_bits())),
        DataType::Double => v.as_f64().map(|x| DictKey::F64(x.to_bits())),
        DataType::String => v.as_str().map(|s| DictKey::Str(s.to_string())),
        DataType::Boolean => match v {
            Value::Boolean(b) => Some(DictKey::Bool(*b)),
            _ => None,
        },
    }
}

/// Distinct values of one column in insertion order.
enum TypedVals {
    Int(Vec<i32>),
    Long(Vec<i64>),
    Float(Vec<f32>),
    Double(Vec<f64>),
    Str(Vec<String>),
    Bool(Vec<bool>),
}

impl TypedVals {
    fn new(data_type: DataType) -> TypedVals {
        match data_type {
            DataType::Int => TypedVals::Int(Vec::new()),
            DataType::Long => TypedVals::Long(Vec::new()),
            DataType::Float => TypedVals::Float(Vec::new()),
            DataType::Double => TypedVals::Double(Vec::new()),
            DataType::String => TypedVals::Str(Vec::new()),
            DataType::Boolean => TypedVals::Bool(Vec::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            TypedVals::Int(v) => v.len(),
            TypedVals::Long(v) => v.len(),
            TypedVals::Float(v) => v.len(),
            TypedVals::Double(v) => v.len(),
            TypedVals::Str(v) => v.len(),
            TypedVals::Bool(v) => v.len(),
        }
    }

    /// Push the typed form of `v`; coercion mirrors [`key_of`].
    fn push(&mut self, v: &Value) -> Option<()> {
        match self {
            TypedVals::Int(d) => d.push(v.as_i64()? as i32),
            TypedVals::Long(d) => d.push(v.as_i64()?),
            TypedVals::Float(d) => d.push(v.as_f64()? as f32),
            TypedVals::Double(d) => d.push(v.as_f64()?),
            TypedVals::Str(d) => d.push(v.as_str()?.to_string()),
            TypedVals::Bool(d) => match v {
                Value::Boolean(b) => d.push(*b),
                _ => return None,
            },
        }
        Some(())
    }

    fn truncate(&mut self, keep: usize) {
        match self {
            TypedVals::Int(v) => v.truncate(keep),
            TypedVals::Long(v) => v.truncate(keep),
            TypedVals::Float(v) => v.truncate(keep),
            TypedVals::Double(v) => v.truncate(keep),
            TypedVals::Str(v) => v.truncate(keep),
            TypedVals::Bool(v) => v.truncate(keep),
        }
    }

    fn value_at(&self, id: DictId) -> Value {
        let i = id as usize;
        match self {
            TypedVals::Int(v) => Value::Int(v[i]),
            TypedVals::Long(v) => Value::Long(v[i]),
            TypedVals::Float(v) => Value::Float(v[i]),
            TypedVals::Double(v) => Value::Double(v[i]),
            TypedVals::Str(v) => Value::String(v[i].clone()),
            TypedVals::Bool(v) => Value::Boolean(v[i]),
        }
    }

    /// Argsort of the distinct values by the same comparators
    /// [`Dictionary::build`] sorts with. Values are distinct, so an
    /// unstable sort is deterministic.
    fn argsort(&self) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..self.len() as u32).collect();
        match self {
            TypedVals::Int(v) => perm.sort_unstable_by_key(|&i| v[i as usize]),
            TypedVals::Long(v) => perm.sort_unstable_by_key(|&i| v[i as usize]),
            TypedVals::Float(v) => {
                perm.sort_unstable_by(|&a, &b| v[a as usize].total_cmp(&v[b as usize]))
            }
            TypedVals::Double(v) => {
                perm.sort_unstable_by(|&a, &b| v[a as usize].total_cmp(&v[b as usize]))
            }
            TypedVals::Str(v) => perm.sort_unstable_by(|&a, &b| v[a as usize].cmp(&v[b as usize])),
            TypedVals::Bool(v) => perm.sort_unstable_by_key(|&i| v[i as usize]),
        }
        perm
    }

    /// Sorted [`Dictionary`] over the permutation from [`argsort`].
    fn sorted_dictionary(&self, perm: &[u32]) -> Dictionary {
        match self {
            TypedVals::Int(v) => Dictionary::Int(perm.iter().map(|&i| v[i as usize]).collect()),
            TypedVals::Long(v) => Dictionary::Long(perm.iter().map(|&i| v[i as usize]).collect()),
            TypedVals::Float(v) => Dictionary::Float(perm.iter().map(|&i| v[i as usize]).collect()),
            TypedVals::Double(v) => {
                Dictionary::Double(perm.iter().map(|&i| v[i as usize]).collect())
            }
            TypedVals::Str(v) => {
                Dictionary::String(perm.iter().map(|&i| v[i as usize].clone()).collect())
            }
            TypedVals::Bool(v) => {
                Dictionary::Boolean(perm.iter().map(|&i| v[i as usize]).collect())
            }
        }
    }
}

/// Append-only value → id map with a cached sorted view.
///
/// Ids are dense first-seen insertion ids. The sorted view (a regular
/// [`Dictionary`] plus an insertion-id → sorted-id remap) is rebuilt only
/// when the cardinality — the dictionary *generation* — has changed since
/// it was last taken, so steady-state cuts of a segment whose value domain
/// has saturated are O(1) per column.
struct MutableDictionary {
    data_type: DataType,
    vals: TypedVals,
    index: HashMap<DictKey, DictId>,
    sorted: Option<(usize, Arc<Dictionary>, Arc<[u32]>)>,
}

impl MutableDictionary {
    fn new(data_type: DataType) -> MutableDictionary {
        MutableDictionary {
            data_type,
            vals: TypedVals::new(data_type),
            index: HashMap::new(),
            sorted: None,
        }
    }

    #[cfg(test)]
    fn cardinality(&self) -> usize {
        self.vals.len()
    }

    fn intern(&mut self, v: &Value, column: &str) -> Result<DictId> {
        let key = key_of(self.data_type, v).ok_or_else(|| {
            PinotError::Internal(format!(
                "value {v:?} cannot enter {:?} dictionary of column {column}",
                self.data_type
            ))
        })?;
        if let Some(&id) = self.index.get(&key) {
            return Ok(id);
        }
        let id = self.vals.len() as DictId;
        self.vals.push(v).ok_or_else(|| {
            PinotError::Internal(format!(
                "value {v:?} cannot enter {:?} dictionary of column {column}",
                self.data_type
            ))
        })?;
        self.index.insert(key, id);
        Ok(id)
    }

    /// Sorted dictionary + insertion→sorted remap for the current
    /// generation.
    fn sorted_view(&mut self) -> (Arc<Dictionary>, Arc<[u32]>) {
        let card = self.vals.len();
        if let Some((gen, dict, remap)) = &self.sorted {
            if *gen == card {
                return (Arc::clone(dict), Arc::clone(remap));
            }
        }
        let perm = self.vals.argsort();
        let mut remap = vec![0u32; card];
        for (rank, &ins) in perm.iter().enumerate() {
            remap[ins as usize] = rank as u32;
        }
        let dict = Arc::new(self.vals.sorted_dictionary(&perm));
        let remap: Arc<[u32]> = remap.into();
        self.sorted = Some((card, Arc::clone(&dict), Arc::clone(&remap)));
        (dict, remap)
    }

    /// Roll back to the first `keep` insertion ids (over-consumed replica
    /// repair). Ids are dense first-seen, so this is exact.
    fn truncate(&mut self, keep: usize) {
        if keep >= self.vals.len() {
            return;
        }
        self.vals.truncate(keep);
        self.index.retain(|_, id| (*id as usize) < keep);
        // A cached sorted view over more values is stale; one over at most
        // `keep` values stays correct (the surviving prefix is unchanged)
        // and revalidates through the generation check.
        if matches!(&self.sorted, Some((gen, _, _)) if *gen > keep) {
            self.sorted = None;
        }
    }
}

/// One column of the consuming segment: mutable dictionary + chunked
/// forward vector of insertion ids (single-value) or flat id array with
/// offsets (multi-value).
pub(crate) struct MutableColumn {
    spec: FieldSpec,
    dict: MutableDictionary,
    /// Sealed bit-packed chunks of exactly [`CHUNK_ROWS`] insertion ids.
    chunks: Vec<Arc<PackedIntVec>>,
    /// Open-chunk insertion ids, row-wise.
    tail: Vec<u32>,
    /// Multi-value: per-doc offsets into `mv_ids` (`len == rows + 1`).
    mv_offsets: Vec<u32>,
    mv_ids: Vec<u32>,
}

impl MutableColumn {
    pub(crate) fn new(spec: FieldSpec) -> MutableColumn {
        let dict = MutableDictionary::new(spec.data_type);
        let single = spec.single_value;
        MutableColumn {
            spec,
            dict,
            chunks: Vec::new(),
            tail: Vec::new(),
            mv_offsets: if single { Vec::new() } else { vec![0] },
            mv_ids: Vec::new(),
        }
    }

    /// Append one (normalized) value. Returns the number of chunks this
    /// append sealed (0 or 1), for the `realtime.chunks_sealed` counter.
    pub(crate) fn append(&mut self, v: &Value) -> Result<usize> {
        if self.spec.single_value {
            let id = self.dict.intern(v, &self.spec.name)?;
            self.tail.push(id);
            if self.tail.len() == CHUNK_ROWS {
                self.chunks
                    .push(Arc::new(PackedIntVec::from_slice(&self.tail)));
                self.tail.clear();
                return Ok(1);
            }
            Ok(0)
        } else {
            for e in v.elements() {
                let id = self.dict.intern(&e, &self.spec.name)?;
                self.mv_ids.push(id);
            }
            self.mv_offsets.push(self.mv_ids.len() as u32);
            Ok(0)
        }
    }

    /// Insertion ids of all rows, flattened (single-value only).
    fn all_sv_ids(&self, rows: usize) -> Vec<u32> {
        debug_assert_eq!(rows, self.chunks.len() * CHUNK_ROWS + self.tail.len());
        let mut ids = Vec::with_capacity(rows);
        for chunk in &self.chunks {
            ids.extend(chunk.iter());
        }
        ids.extend_from_slice(&self.tail);
        ids
    }

    /// Cut view of the column at `rows`: shared sorted dictionary, shared
    /// sealed chunks, cloned tail. Multi-value columns clone their (small)
    /// id arrays — they are excluded from block kernels anyway.
    pub(crate) fn cut(&mut self, rows: usize) -> ColumnData {
        let (dictionary, remap) = self.dict.sorted_view();
        let forward = if self.spec.single_value {
            ForwardIndex::chunked(
                self.chunks.clone(),
                self.tail.as_slice().into(),
                remap,
                rows,
            )
        } else {
            let ids: Vec<u32> = self.mv_ids.iter().map(|&i| remap[i as usize]).collect();
            ForwardIndex::MultiValue {
                offsets: self.mv_offsets.clone(),
                ids: PackedIntVec::from_slice(&ids),
            }
        };
        ColumnData {
            spec: self.spec.clone(),
            dictionary,
            forward,
            inverted: None,
            sorted: None,
            bloom: None,
        }
    }

    /// Owned seal input: sorted dictionary plus fully remapped id vectors.
    fn seal_input(&mut self, rows: usize) -> SealInput {
        let (dict, remap) = self.dict.sorted_view();
        if self.spec.single_value {
            let mut ids = self.all_sv_ids(rows);
            for id in ids.iter_mut() {
                *id = remap[*id as usize];
            }
            SealInput {
                spec: self.spec.clone(),
                dict,
                sv_ids: ids,
                mv: None,
            }
        } else {
            let ids: Vec<u32> = self.mv_ids.iter().map(|&i| remap[i as usize]).collect();
            SealInput {
                spec: self.spec.clone(),
                dict,
                sv_ids: Vec::new(),
                mv: Some((self.mv_offsets.clone(), ids)),
            }
        }
    }

    /// Reconstruct the column's values in arrival order (legacy
    /// snapshot-rebuild path and sealing tests).
    pub(crate) fn values_for_rebuild(&self, rows: usize) -> Vec<Value> {
        if self.spec.single_value {
            self.all_sv_ids(rows)
                .into_iter()
                .map(|id| self.dict.vals.value_at(id))
                .collect()
        } else {
            (0..rows)
                .map(|d| {
                    let ids =
                        &self.mv_ids[self.mv_offsets[d] as usize..self.mv_offsets[d + 1] as usize];
                    match &self.dict.vals {
                        TypedVals::Int(v) => {
                            Value::IntArray(ids.iter().map(|&i| v[i as usize]).collect())
                        }
                        TypedVals::Long(v) => {
                            Value::LongArray(ids.iter().map(|&i| v[i as usize]).collect())
                        }
                        TypedVals::Str(v) => {
                            Value::StringArray(ids.iter().map(|&i| v[i as usize].clone()).collect())
                        }
                        // Schema validation never admits other multi-value
                        // element types.
                        _ => Value::Null,
                    }
                })
                .collect()
        }
    }

    /// Roll back to the first `keep_rows` rows, including the dictionary
    /// high-water mark.
    pub(crate) fn truncate(&mut self, keep_rows: usize) {
        if self.spec.single_value {
            let full = keep_rows / CHUNK_ROWS;
            let rem = keep_rows % CHUNK_ROWS;
            if full < self.chunks.len() {
                // The partially kept chunk re-opens as the tail.
                let boundary: Vec<u32> = self.chunks[full].iter().take(rem).collect();
                self.chunks.truncate(full);
                self.tail = boundary;
            } else {
                self.tail
                    .truncate(keep_rows - self.chunks.len() * CHUNK_ROWS);
            }
            let max_id = self
                .chunks
                .iter()
                .flat_map(|c| c.iter())
                .chain(self.tail.iter().copied())
                .max();
            self.dict.truncate(max_id.map_or(0, |m| m as usize + 1));
        } else {
            self.mv_offsets.truncate(keep_rows + 1);
            self.mv_ids
                .truncate(*self.mv_offsets.last().unwrap_or(&0) as usize);
            let max_id = self.mv_ids.iter().copied().max();
            self.dict.truncate(max_id.map_or(0, |m| m as usize + 1));
        }
    }

    #[cfg(test)]
    pub(crate) fn dict_cardinality(&self) -> usize {
        self.dict.cardinality()
    }
}

/// Per-column data handed from the locked mutable state to the (unlocked)
/// seal: everything needed to build final indexes without touching rows.
pub(crate) struct SealInput {
    spec: FieldSpec,
    dict: Arc<Dictionary>,
    /// Remapped (sorted-dictionary) ids in arrival order; empty for MV.
    sv_ids: Vec<u32>,
    /// MV: (offsets, remapped flat ids).
    mv: Option<(Vec<u32>, Vec<u32>)>,
}

/// Validate an index config against the schema — same checks (and error
/// text) as `SegmentBuilder::new`, which the row-wise seal used to run.
fn validate_config(schema: &Schema, config: &BuilderConfig) -> Result<()> {
    for col in &config.sort_columns {
        let spec = schema
            .field(col)
            .ok_or_else(|| PinotError::Schema(format!("sort column {col:?} not in schema")))?;
        if !spec.single_value {
            return Err(PinotError::Schema(format!(
                "sort column {col:?} must be single-value"
            )));
        }
    }
    for col in &config.inverted_columns {
        if schema.field(col).is_none() {
            return Err(PinotError::Schema(format!(
                "inverted-index column {col:?} not in schema"
            )));
        }
    }
    for col in &config.bloom_columns {
        if schema.field(col).is_none() {
            return Err(PinotError::Schema(format!(
                "bloom-filter column {col:?} not in schema"
            )));
        }
    }
    Ok(())
}

/// Assemble segment metadata the same way `SegmentBuilder` does.
pub(crate) fn assemble_metadata(
    schema: &Schema,
    config: &BuilderConfig,
    columns: &[ColumnData],
    num_docs: usize,
) -> SegmentMetadata {
    let time_column = schema.time_column().map(|f| f.name.clone());
    let (min_time, max_time) = match &time_column {
        Some(tc) => {
            let col = columns
                .iter()
                .find(|c| &c.spec.name == tc)
                .expect("time column built");
            (
                col.dictionary.min_value().and_then(|v| v.as_i64()),
                col.dictionary.max_value().and_then(|v| v.as_i64()),
            )
        }
        None => (None, None),
    };
    let size_bytes = columns.iter().map(ColumnData::size_bytes).sum::<usize>() as u64;
    SegmentMetadata {
        segment_name: config.segment_name.clone(),
        table: config.table.clone(),
        num_docs: num_docs as u32,
        columns: columns.iter().map(ColumnData::stats).collect(),
        time_column,
        min_time,
        max_time,
        partition: config.partition.clone(),
        offset_range: config.offset_range,
        created_at_millis: config.created_at_millis,
        size_bytes,
    }
}

/// Extract the per-column seal inputs. Called with the segment lock held;
/// everything returned is owned, so index building proceeds unlocked.
pub(crate) fn seal_inputs(columns: &mut [MutableColumn], rows: usize) -> Vec<SealInput> {
    columns.iter_mut().map(|c| c.seal_input(rows)).collect()
}

/// Build the final immutable segment from columnar seal inputs: physical
/// reorder by the sort columns (comparing sorted-dictionary ids, which
/// orders identically to `Value::total_cmp` on the same column), then
/// per-column forward/sorted/inverted/bloom structures — one pool task per
/// column when a pool is supplied. No `Record` is ever materialized.
pub(crate) fn seal_from_columnar(
    schema: &Schema,
    config: &BuilderConfig,
    inputs: Vec<SealInput>,
    num_docs: usize,
    pool: Option<&pinot_taskpool::TaskPool>,
) -> Result<ImmutableSegment> {
    validate_config(schema, config)?;

    // Arrival-order → sorted-order permutation. Stable, like the row sort
    // it replaces, so equal keys keep stream order.
    let perm: Option<Vec<u32>> = if config.sort_columns.is_empty() {
        None
    } else {
        let sort_ids: Vec<&[u32]> = config
            .sort_columns
            .iter()
            .map(|c| {
                let ci = schema.column_index(c).expect("validated");
                inputs[ci].sv_ids.as_slice()
            })
            .collect();
        let mut perm: Vec<u32> = (0..num_docs as u32).collect();
        perm.sort_by(|&a, &b| {
            for ids in &sort_ids {
                let ord = ids[a as usize].cmp(&ids[b as usize]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Some(perm)
    };

    let columns: Vec<ColumnData> = match pool {
        Some(pool) => {
            let slots: Vec<parking_lot::Mutex<Option<ColumnData>>> =
                inputs.iter().map(|_| Default::default()).collect();
            pool.scope(|scope| {
                for (ci, input) in inputs.iter().enumerate() {
                    let (slot, perm) = (&slots[ci], &perm);
                    scope.spawn(move || {
                        *slot.lock() = Some(seal_column(input, perm.as_deref(), config, num_docs));
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("scope joined every column task"))
                .collect()
        }
        None => inputs
            .iter()
            .map(|input| seal_column(input, perm.as_deref(), config, num_docs))
            .collect(),
    };

    let metadata = assemble_metadata(schema, config, &columns, num_docs);
    Ok(ImmutableSegment::new(metadata, schema.clone(), columns))
}

fn seal_column(
    input: &SealInput,
    perm: Option<&[u32]>,
    config: &BuilderConfig,
    num_docs: usize,
) -> ColumnData {
    let spec = &input.spec;
    let cardinality = input.dict.cardinality();
    let forward = if let Some((offsets, flat)) = &input.mv {
        let per_doc: Vec<Vec<DictId>> = (0..num_docs)
            .map(|d| {
                let d = perm.map_or(d, |p| p[d] as usize);
                flat[offsets[d] as usize..offsets[d + 1] as usize].to_vec()
            })
            .collect();
        ForwardIndex::multi(&per_doc)
    } else {
        match perm {
            Some(p) => {
                let ids: Vec<u32> = p.iter().map(|&d| input.sv_ids[d as usize]).collect();
                ForwardIndex::single(&ids)
            }
            None => ForwardIndex::single(&input.sv_ids),
        }
    };

    let sorted = if config.sort_columns.first() == Some(&spec.name) {
        let ids: Vec<DictId> = (0..num_docs as u32).map(|d| forward.get(d)).collect();
        SortedIndex::build(&ids, cardinality)
    } else {
        None
    };

    let inverted = if sorted.is_none() && config.inverted_columns.contains(&spec.name) {
        Some(InvertedIndex::build(&forward, cardinality))
    } else {
        None
    };

    let bloom_filter = if config.bloom_columns.contains(&spec.name) {
        let mut f =
            bloom::BloomFilter::new(cardinality, config.bloom_bits_per_key, bloom::DEFAULT_SEED);
        for id in 0..cardinality as DictId {
            if let Some(key) = bloom::bloom_key(&input.dict.value_of(id), spec.data_type) {
                f.insert(&key);
            }
        }
        Some(f)
    } else {
        None
    };

    ColumnData {
        spec: spec.clone(),
        dictionary: Arc::clone(&input.dict),
        forward,
        inverted,
        sorted,
        bloom: bloom_filter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_coerces_widened_numerics_to_one_id() {
        let mut d = MutableDictionary::new(DataType::Long);
        let a = d.intern(&Value::Long(5), "c").unwrap();
        let b = d.intern(&Value::Int(5), "c").unwrap();
        assert_eq!(a, b);
        assert_eq!(d.cardinality(), 1);
        let c = d.intern(&Value::Long(3), "c").unwrap();
        assert_eq!(c, 1); // first-seen dense ids
    }

    #[test]
    fn sorted_view_caches_per_generation() {
        let mut d = MutableDictionary::new(DataType::String);
        d.intern(&Value::from("b"), "c").unwrap();
        d.intern(&Value::from("a"), "c").unwrap();
        let (dict, remap) = d.sorted_view();
        assert_eq!(dict.value_of(0), Value::from("a"));
        assert_eq!(remap.as_ref(), &[1, 0]); // "b" inserted first, sorts second
        let (dict2, _) = d.sorted_view();
        assert!(Arc::ptr_eq(&dict, &dict2)); // same generation → cached
        d.intern(&Value::from("b"), "c").unwrap(); // duplicate: no new id
        let (dict3, _) = d.sorted_view();
        assert!(Arc::ptr_eq(&dict, &dict3));
        d.intern(&Value::from("0"), "c").unwrap(); // new id → new generation
        let (dict4, remap4) = d.sorted_view();
        assert!(!Arc::ptr_eq(&dict, &dict4));
        assert_eq!(remap4.as_ref(), &[2, 1, 0]);
    }

    #[test]
    fn dictionary_truncate_rolls_back_high_water() {
        let mut d = MutableDictionary::new(DataType::Long);
        for x in [10i64, 20, 30] {
            d.intern(&Value::Long(x), "c").unwrap();
        }
        d.truncate(2);
        assert_eq!(d.cardinality(), 2);
        // 30 must re-intern as a fresh id, 20 must resolve to its old id.
        assert_eq!(d.intern(&Value::Long(20), "c").unwrap(), 1);
        assert_eq!(d.intern(&Value::Long(30), "c").unwrap(), 2);
    }

    #[test]
    fn column_cut_remaps_to_sorted_ids_across_chunks() {
        let mut col = MutableColumn::new(FieldSpec::dimension("k", DataType::Long));
        let n = CHUNK_ROWS + 100;
        let mut sealed = 0;
        for i in 0..n {
            // Descending values: insertion order is the reverse of sorted.
            sealed += col.append(&Value::Long(-(i as i64))).unwrap();
        }
        assert_eq!(sealed, 1);
        let cut = col.cut(n);
        assert_eq!(cut.forward.num_docs(), n);
        assert_eq!(cut.dictionary.cardinality(), n);
        // Row 0 holds the largest value → highest sorted id.
        assert_eq!(cut.forward.get(0), (n - 1) as u32);
        assert_eq!(cut.value(0), Value::Long(0));
        assert_eq!(cut.value((n - 1) as u32), Value::Long(-((n - 1) as i64)));
    }

    #[test]
    fn column_truncate_reopens_sealed_chunk() {
        let mut col = MutableColumn::new(FieldSpec::dimension("k", DataType::Long));
        let n = CHUNK_ROWS + 50;
        for i in 0..n {
            col.append(&Value::Long(i as i64)).unwrap();
        }
        // Truncate into the sealed chunk: it must re-open as a tail.
        let keep = CHUNK_ROWS - 10;
        col.truncate(keep);
        assert_eq!(col.dict_cardinality(), keep);
        let cut = col.cut(keep);
        assert_eq!(cut.forward.num_docs(), keep);
        assert_eq!(cut.value((keep - 1) as u32), Value::Long(keep as i64 - 1));
        // Appending after the rollback keeps ids dense.
        col.append(&Value::Long(7)).unwrap(); // existing value
        assert_eq!(col.dict_cardinality(), keep);
        col.append(&Value::Long(1_000_000)).unwrap(); // fresh value
        assert_eq!(col.dict_cardinality(), keep + 1);
    }
}
