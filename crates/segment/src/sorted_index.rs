//! Sorted-column index (§4.2).
//!
//! When a segment's records are physically ordered by a column, each
//! dictionary id occupies one contiguous run of documents. Storing only the
//! run start per id (plus a sentinel) replaces an inverted index with two
//! u32 lookups, makes range predicates a single `(start, end)` doc interval,
//! and lets downstream operators run over one contiguous interval. The paper
//! credits this layout with Pinot's advantage over Druid on the WVMP and
//! share-analytics workloads.

use crate::{DictId, DocId};

/// Maps dict ids to contiguous doc ranges for a physically sorted column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedIndex {
    /// `starts[id]` = first doc with this id; `starts[cardinality]` = num
    /// docs. Monotonically non-decreasing; every id occupies
    /// `[starts[id], starts[id+1])`.
    starts: Vec<DocId>,
}

impl SortedIndex {
    /// Build from the forward-index ids of a sorted column. Returns `None`
    /// if the ids are not non-decreasing (column not actually sorted) or if
    /// some dictionary id never occurs (impossible for a segment-local
    /// dictionary built from the same data).
    pub fn build(ids: &[DictId], cardinality: usize) -> Option<SortedIndex> {
        let mut starts = Vec::with_capacity(cardinality + 1);
        let mut prev: Option<DictId> = None;
        for (doc, &id) in ids.iter().enumerate() {
            match prev {
                Some(p) if id < p => return None,
                Some(p) if id == p => {}
                _ => {
                    // New id begins; it must be exactly the next id since the
                    // dictionary is built from this very data.
                    if id as usize != starts.len() {
                        return None;
                    }
                    starts.push(doc as DocId);
                }
            }
            prev = Some(id);
        }
        if starts.len() != cardinality {
            return None;
        }
        starts.push(ids.len() as DocId);
        Some(SortedIndex { starts })
    }

    pub fn cardinality(&self) -> usize {
        self.starts.len() - 1
    }

    pub fn num_docs(&self) -> DocId {
        *self.starts.last().expect("sentinel")
    }

    /// Document range `[start, end)` for one dictionary id.
    #[inline]
    pub fn doc_range(&self, id: DictId) -> (DocId, DocId) {
        let i = id as usize;
        (self.starts[i], self.starts[i + 1])
    }

    /// Run length (document count) for one dictionary id — the exact
    /// per-value selectivity numerator on a sorted column. Out-of-range
    /// ids have zero-length runs.
    #[inline]
    pub fn run_length(&self, id: DictId) -> DocId {
        let i = id as usize;
        if i + 1 >= self.starts.len() {
            return 0;
        }
        self.starts[i + 1] - self.starts[i]
    }

    /// Document range covering a dict-id interval `[lo, hi)` — because ids
    /// are sorted, this is a single contiguous doc range too.
    pub fn doc_range_for_ids(&self, lo: DictId, hi: DictId) -> (DocId, DocId) {
        let hi = hi.min(self.cardinality() as DictId);
        if lo >= hi {
            return (0, 0);
        }
        (self.starts[lo as usize], self.starts[hi as usize])
    }

    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.starts.len() * 4
    }

    pub(crate) fn starts(&self) -> &[DocId] {
        &self.starts
    }

    pub(crate) fn from_starts(starts: Vec<DocId>) -> Option<SortedIndex> {
        if starts.is_empty() || starts.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        Some(SortedIndex { starts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        // ids: 0 0 1 1 1 2
        let idx = SortedIndex::build(&[0, 0, 1, 1, 1, 2], 3).unwrap();
        assert_eq!(idx.cardinality(), 3);
        assert_eq!(idx.num_docs(), 6);
        assert_eq!(idx.doc_range(0), (0, 2));
        assert_eq!(idx.doc_range(1), (2, 5));
        assert_eq!(idx.doc_range(2), (5, 6));
    }

    #[test]
    fn range_of_ids_is_contiguous() {
        let idx = SortedIndex::build(&[0, 0, 1, 2, 2, 3], 4).unwrap();
        assert_eq!(idx.doc_range_for_ids(1, 3), (2, 5));
        assert_eq!(idx.doc_range_for_ids(0, 4), (0, 6));
        assert_eq!(idx.doc_range_for_ids(2, 2), (0, 0));
        assert_eq!(idx.doc_range_for_ids(3, 99), (5, 6));
    }

    #[test]
    fn rejects_unsorted_input() {
        assert!(SortedIndex::build(&[0, 1, 0], 2).is_none());
        assert!(SortedIndex::build(&[1, 0], 2).is_none());
    }

    #[test]
    fn rejects_gapped_ids() {
        // id 1 missing: dictionary built from same data can't produce this.
        assert!(SortedIndex::build(&[0, 2], 3).is_none());
        // cardinality larger than observed ids
        assert!(SortedIndex::build(&[0, 0], 2).is_none());
    }

    #[test]
    fn empty_segment() {
        let idx = SortedIndex::build(&[], 0).unwrap();
        assert_eq!(idx.cardinality(), 0);
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.doc_range_for_ids(0, 0), (0, 0));
    }

    #[test]
    fn from_starts_validation() {
        assert!(SortedIndex::from_starts(vec![]).is_none());
        assert!(SortedIndex::from_starts(vec![0, 3, 2]).is_none());
        let ok = SortedIndex::from_starts(vec![0, 2, 5]).unwrap();
        assert_eq!(ok.doc_range(1), (2, 5));
    }
}
