//! Mutable (consuming) segments.
//!
//! A realtime server creates one mutable segment per stream partition it
//! consumes (§3.3.1: the OFFLINE → CONSUMING transition). Records append in
//! stream order; queries must see them within seconds. When the end criteria
//! is reached (row count or elapsed time), the completion protocol decides a
//! committer and the segment is *sealed* into an immutable segment with the
//! table's full index configuration.
//!
//! Query access goes through [`MutableSegment::snapshot`], which lazily
//! builds an immutable view of the rows consumed so far and caches it until
//! the next append. The production system maintains incremental realtime
//! indexes instead; the snapshot approach preserves the observable behaviour
//! (near-realtime visibility, identical query semantics) with simpler code,
//! and the paper's own evaluation disables realtime ingestion anyway.

use crate::builder::{BuilderConfig, SegmentBuilder};
use crate::segment::ImmutableSegment;
use pinot_common::{Record, Result, Schema};
use std::sync::Arc;
use std::sync::Mutex;

/// A segment that is still consuming from the stream.
pub struct MutableSegment {
    schema: Schema,
    segment_name: String,
    table: String,
    start_offset: u64,
    /// Next offset to consume (exclusive end of what we hold).
    current_offset: Mutex<u64>,
    rows: Mutex<Vec<Record>>,
    /// Cached immutable view; invalidated on append.
    snapshot: Mutex<Option<Arc<ImmutableSegment>>>,
    created_at_millis: i64,
}

impl MutableSegment {
    pub fn new(
        schema: Schema,
        segment_name: impl Into<String>,
        table: impl Into<String>,
        start_offset: u64,
        created_at_millis: i64,
    ) -> MutableSegment {
        MutableSegment {
            schema,
            segment_name: segment_name.into(),
            table: table.into(),
            start_offset,
            current_offset: Mutex::new(start_offset),
            rows: Mutex::new(Vec::new()),
            snapshot: Mutex::new(None),
            created_at_millis,
        }
    }

    pub fn name(&self) -> &str {
        &self.segment_name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn start_offset(&self) -> u64 {
        self.start_offset
    }

    /// Offset of the next record this segment would consume.
    pub fn current_offset(&self) -> u64 {
        *self.current_offset.lock().unwrap()
    }

    pub fn num_rows(&self) -> usize {
        self.rows.lock().unwrap().len()
    }

    pub fn created_at_millis(&self) -> i64 {
        self.created_at_millis
    }

    /// Append one record consumed at `offset`. Offsets must arrive in
    /// order, each exactly the current offset; this is what lets replicas
    /// compare positions by a single number in the completion protocol.
    pub fn append(&self, record: Record, offset: u64) -> Result<()> {
        let normalized = record.normalize(&self.schema)?;
        let mut cur = self.current_offset.lock().unwrap();
        if offset != *cur {
            return Err(pinot_common::PinotError::Segment(format!(
                "out-of-order append: expected offset {}, got {offset}",
                *cur
            )));
        }
        self.rows.lock().unwrap().push(normalized);
        *cur += 1;
        *self.snapshot.lock().unwrap() = None;
        Ok(())
    }

    /// An immutable view of everything consumed so far. Cached between
    /// appends so repeated queries don't rebuild.
    pub fn snapshot(&self) -> Result<Arc<ImmutableSegment>> {
        if let Some(s) = self.snapshot.lock().unwrap().as_ref() {
            return Ok(Arc::clone(s));
        }
        let rows = self.rows.lock().unwrap().clone();
        let end_offset = self.current_offset();
        let mut builder = SegmentBuilder::new(
            self.schema.clone(),
            BuilderConfig::new(self.segment_name.clone(), self.table.clone())
                .with_offset_range(self.start_offset, end_offset),
        )?;
        for r in rows {
            builder.add(r)?;
        }
        let seg = Arc::new(builder.build()?);
        *self.snapshot.lock().unwrap() = Some(Arc::clone(&seg));
        Ok(seg)
    }

    /// Seal into the final immutable segment with the table's full index
    /// configuration (sort columns, inverted indexes, partition info).
    pub fn seal(&self, config: BuilderConfig) -> Result<ImmutableSegment> {
        self.seal_with_pool(config, None)
    }

    /// [`seal`](MutableSegment::seal) with column/index builds fanned out on
    /// a task pool (the server passes its execution pool here).
    pub fn seal_with_pool(
        &self,
        mut config: BuilderConfig,
        pool: Option<&pinot_taskpool::TaskPool>,
    ) -> Result<ImmutableSegment> {
        config.segment_name = self.segment_name.clone();
        config.table = self.table.clone();
        config.offset_range = Some((self.start_offset, self.current_offset()));
        config.created_at_millis = self.created_at_millis;
        let rows = self.rows.lock().unwrap().clone();
        let mut builder = SegmentBuilder::new(self.schema.clone(), config)?;
        for r in rows {
            builder.add(r)?;
        }
        builder.build_with_pool(pool)
    }

    /// Drop rows past `offset` (completion-protocol CATCHUP/DISCARD repair
    /// never needs this in the happy path, but a replica that over-consumed
    /// relative to the committed copy truncates before re-fetching).
    pub fn truncate_to_offset(&self, offset: u64) {
        let mut cur = self.current_offset.lock().unwrap();
        if offset >= *cur {
            return;
        }
        let keep = (offset - self.start_offset) as usize;
        self.rows.lock().unwrap().truncate(keep);
        *cur = offset;
        *self.snapshot.lock().unwrap() = None;
    }
}

impl std::fmt::Debug for MutableSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutableSegment")
            .field("name", &self.segment_name)
            .field("rows", &self.num_rows())
            .field("offsets", &(self.start_offset, self.current_offset()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_common::{DataType, FieldSpec, TimeUnit, Value};

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                FieldSpec::dimension("k", DataType::Long),
                FieldSpec::metric("m", DataType::Long),
                FieldSpec::time("ts", DataType::Long, TimeUnit::Seconds),
            ],
        )
        .unwrap()
    }

    fn rec(k: i64, m: i64, ts: i64) -> Record {
        Record::new(vec![Value::Long(k), Value::Long(m), Value::Long(ts)])
    }

    #[test]
    fn append_and_snapshot() {
        let ms = MutableSegment::new(schema(), "s__0__0", "t_REALTIME", 100, 0);
        ms.append(rec(1, 10, 5), 100).unwrap();
        ms.append(rec(2, 20, 6), 101).unwrap();
        assert_eq!(ms.num_rows(), 2);
        assert_eq!(ms.current_offset(), 102);

        let snap = ms.snapshot().unwrap();
        assert_eq!(snap.num_docs(), 2);
        assert_eq!(snap.metadata().offset_range, Some((100, 102)));

        // Cached until next append.
        let snap2 = ms.snapshot().unwrap();
        assert!(Arc::ptr_eq(&snap, &snap2));
        ms.append(rec(3, 30, 7), 102).unwrap();
        let snap3 = ms.snapshot().unwrap();
        assert_eq!(snap3.num_docs(), 3);
    }

    #[test]
    fn rejects_out_of_order_offsets() {
        let ms = MutableSegment::new(schema(), "s", "t", 0, 0);
        ms.append(rec(1, 1, 1), 0).unwrap();
        assert!(ms.append(rec(2, 2, 2), 2).is_err()); // gap
        assert!(ms.append(rec(2, 2, 2), 0).is_err()); // replay
        assert!(ms.append(rec(2, 2, 2), 1).is_ok());
    }

    #[test]
    fn seal_applies_index_config() {
        let ms = MutableSegment::new(schema(), "s", "t_REALTIME", 0, 42);
        for i in 0..10 {
            ms.append(rec(10 - i, i, i), i as u64).unwrap();
        }
        let sealed = ms
            .seal(BuilderConfig::new("ignored", "ignored").with_sort_columns(&["k"]))
            .unwrap();
        assert_eq!(sealed.name(), "s");
        assert_eq!(sealed.metadata().table, "t_REALTIME");
        assert_eq!(sealed.metadata().offset_range, Some((0, 10)));
        assert_eq!(sealed.metadata().created_at_millis, 42);
        assert!(sealed.column("k").unwrap().sorted.is_some());
        // Physically re-sorted by k.
        let ks: Vec<i64> = (0..10)
            .map(|d| sealed.column("k").unwrap().long(d).unwrap())
            .collect();
        let mut expect = ks.clone();
        expect.sort();
        assert_eq!(ks, expect);
    }

    #[test]
    fn truncate_to_offset() {
        let ms = MutableSegment::new(schema(), "s", "t", 10, 0);
        for i in 0..5u64 {
            ms.append(rec(i as i64, 0, 0), 10 + i).unwrap();
        }
        ms.truncate_to_offset(12);
        assert_eq!(ms.num_rows(), 2);
        assert_eq!(ms.current_offset(), 12);
        // Truncating past the end is a no-op.
        ms.truncate_to_offset(99);
        assert_eq!(ms.current_offset(), 12);
        // Can continue consuming from the truncation point.
        ms.append(rec(9, 9, 9), 12).unwrap();
        assert_eq!(ms.num_rows(), 3);
    }
}
