//! Mutable (consuming) segments.
//!
//! A realtime server creates one mutable segment per stream partition it
//! consumes (§3.3.1: the OFFLINE → CONSUMING transition). Records append in
//! stream order; queries must see them within seconds. When the end criteria
//! is reached (row count or elapsed time), the completion protocol decides a
//! committer and the segment is *sealed* into an immutable segment with the
//! table's full index configuration.
//!
//! Rows are stored columnar from the first append (see [`crate::realtime`]):
//! per-column mutable dictionaries plus chunked bit-packed forward vectors.
//! Query access goes through [`MutableSegment::cut`], a *consistent cut* —
//! the row high-water mark and dictionary generation captured under one
//! lock. A cut is a real [`ImmutableSegment`] whose columns share the
//! sealed chunks and sorted dictionary by `Arc`, so taking one is O(open
//! tail + changed dictionaries), not O(total rows), and the batch kernels,
//! pruning, and cost-based planning all see realtime segments exactly like
//! offline ones (with exact zone maps, because the cut dictionary is exact
//! at the high-water mark). Cuts are cached per `(epoch, high-water mark)`
//! so repeated queries between appends share one view.
//!
//! The pre-columnar rebuild-everything path survives only as
//! [`MutableSegment::snapshot_rebuild`], the benchmark baseline behind
//! `PINOT_REALTIME_COLUMNAR=0`.

use crate::builder::{BuilderConfig, SegmentBuilder};
use crate::realtime::{self, MutableColumn};
use crate::segment::ImmutableSegment;
use pinot_common::{Record, Result, Schema};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, OnceLock};

/// `PINOT_REALTIME_COLUMNAR=0` restores the legacy rebuild-on-query
/// snapshot path (the benchmark baseline); anything else (or unset) serves
/// queries from columnar consistent cuts.
pub fn realtime_columnar_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| std::env::var("PINOT_REALTIME_COLUMNAR").map_or(true, |v| v != "0"))
}

/// Columnar state behind one lock: appends, cuts, and truncation all
/// serialize here, which is what makes a cut consistent.
struct Inner {
    /// Next offset to consume (exclusive end of what we hold).
    current_offset: u64,
    /// Bumped by truncation so `(epoch, high-water)` cache keys can never
    /// alias across a rollback that rewinds to the same offset.
    epoch: u64,
    num_rows: usize,
    columns: Vec<MutableColumn>,
}

type ViewCache = Mutex<Option<((u64, u64), Arc<ImmutableSegment>)>>;

/// A segment that is still consuming from the stream.
pub struct MutableSegment {
    schema: Schema,
    segment_name: String,
    table: String,
    start_offset: u64,
    inner: Mutex<Inner>,
    /// Cached columnar cut, keyed by `(epoch, current_offset)`.
    cut_cache: ViewCache,
    /// Cached legacy rebuilt snapshot, same key.
    legacy_cache: ViewCache,
    /// Chunks sealed since the last [`take_chunks_sealed`] drain
    /// (`realtime.chunks_sealed` metric).
    chunks_sealed: AtomicU64,
    created_at_millis: i64,
}

impl MutableSegment {
    pub fn new(
        schema: Schema,
        segment_name: impl Into<String>,
        table: impl Into<String>,
        start_offset: u64,
        created_at_millis: i64,
    ) -> MutableSegment {
        let columns = schema
            .fields()
            .iter()
            .map(|spec| MutableColumn::new(spec.clone()))
            .collect();
        MutableSegment {
            schema,
            segment_name: segment_name.into(),
            table: table.into(),
            start_offset,
            inner: Mutex::new(Inner {
                current_offset: start_offset,
                epoch: 0,
                num_rows: 0,
                columns,
            }),
            cut_cache: Mutex::new(None),
            legacy_cache: Mutex::new(None),
            chunks_sealed: AtomicU64::new(0),
            created_at_millis,
        }
    }

    pub fn name(&self) -> &str {
        &self.segment_name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn start_offset(&self) -> u64 {
        self.start_offset
    }

    /// Offset of the next record this segment would consume.
    pub fn current_offset(&self) -> u64 {
        self.inner.lock().unwrap().current_offset
    }

    pub fn num_rows(&self) -> usize {
        self.inner.lock().unwrap().num_rows
    }

    pub fn created_at_millis(&self) -> i64 {
        self.created_at_millis
    }

    /// Forward-vector chunks sealed since the last call (observability).
    pub fn take_chunks_sealed(&self) -> u64 {
        self.chunks_sealed.swap(0, Ordering::Relaxed)
    }

    /// Append one record consumed at `offset`. Offsets must arrive in
    /// order, each exactly the current offset; this is what lets replicas
    /// compare positions by a single number in the completion protocol.
    pub fn append(&self, record: Record, offset: u64) -> Result<()> {
        let normalized = record.normalize(&self.schema)?;
        let values = normalized.into_values();
        let mut inner = self.inner.lock().unwrap();
        if offset != inner.current_offset {
            return Err(pinot_common::PinotError::Segment(format!(
                "out-of-order append: expected offset {}, got {offset}",
                inner.current_offset
            )));
        }
        let mut sealed = 0usize;
        for (column, value) in inner.columns.iter_mut().zip(&values) {
            sealed += column.append(value)?;
        }
        inner.num_rows += 1;
        inner.current_offset += 1;
        drop(inner);
        if sealed > 0 {
            self.chunks_sealed
                .fetch_add(sealed as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    /// A consistent cut of everything consumed so far: a cheap immutable
    /// view (shared chunks + shared sorted dictionaries, cloned open
    /// tails) taken at the current row high-water mark. Cached until the
    /// next append or truncation.
    pub fn cut(&self) -> Result<Arc<ImmutableSegment>> {
        let mut inner = self.inner.lock().unwrap();
        let key = (inner.epoch, inner.current_offset);
        if let Some((k, seg)) = self.cut_cache.lock().unwrap().as_ref() {
            if *k == key {
                return Ok(Arc::clone(seg));
            }
        }
        let rows = inner.num_rows;
        let columns: Vec<_> = inner.columns.iter_mut().map(|c| c.cut(rows)).collect();
        let end_offset = inner.current_offset;
        drop(inner);
        let config = BuilderConfig::new(self.segment_name.clone(), self.table.clone())
            .with_offset_range(self.start_offset, end_offset);
        let mut metadata = realtime::assemble_metadata(&self.schema, &config, &columns, rows);
        metadata.created_at_millis = self.created_at_millis;
        let seg = Arc::new(ImmutableSegment::new(
            metadata,
            self.schema.clone(),
            columns,
        ));
        *self.cut_cache.lock().unwrap() = Some((key, Arc::clone(&seg)));
        Ok(seg)
    }

    /// An immutable view of everything consumed so far. Compat shim over
    /// [`cut`](MutableSegment::cut) — kept because tests and tooling built
    /// against the pre-columnar API call it.
    pub fn snapshot(&self) -> Result<Arc<ImmutableSegment>> {
        self.cut()
    }

    /// The legacy rebuild-the-world snapshot: reconstruct every row and
    /// push it through [`SegmentBuilder`], O(total rows) per change. Kept
    /// as the measurable baseline behind `PINOT_REALTIME_COLUMNAR=0`.
    pub fn snapshot_rebuild(&self) -> Result<Arc<ImmutableSegment>> {
        let inner = self.inner.lock().unwrap();
        let key = (inner.epoch, inner.current_offset);
        if let Some((k, seg)) = self.legacy_cache.lock().unwrap().as_ref() {
            if *k == key {
                return Ok(Arc::clone(seg));
            }
        }
        let rows = inner.num_rows;
        let end_offset = inner.current_offset;
        let mut per_col: Vec<std::vec::IntoIter<pinot_common::Value>> = inner
            .columns
            .iter()
            .map(|c| c.values_for_rebuild(rows).into_iter())
            .collect();
        drop(inner);
        let records: Vec<Record> = (0..rows)
            .map(|_| {
                Record::new(
                    per_col
                        .iter_mut()
                        .map(|it| it.next().expect("column length matches row count"))
                        .collect(),
                )
            })
            .collect();
        let mut builder = SegmentBuilder::new(
            self.schema.clone(),
            BuilderConfig::new(self.segment_name.clone(), self.table.clone())
                .with_offset_range(self.start_offset, end_offset),
        )?;
        for r in records {
            builder.add(r)?;
        }
        let seg = Arc::new(builder.build()?);
        *self.legacy_cache.lock().unwrap() = Some((key, Arc::clone(&seg)));
        Ok(seg)
    }

    /// Seal into the final immutable segment with the table's full index
    /// configuration (sort columns, inverted indexes, partition info).
    pub fn seal(&self, config: BuilderConfig) -> Result<ImmutableSegment> {
        self.seal_with_pool(config, None)
    }

    /// [`seal`](MutableSegment::seal) with column/index builds fanned out on
    /// a task pool (the server passes its execution pool here). Sealing
    /// works directly from the columnar store — dictionaries are shared and
    /// forward ids remapped, never a `Vec<Record>` re-added row by row.
    pub fn seal_with_pool(
        &self,
        mut config: BuilderConfig,
        pool: Option<&pinot_taskpool::TaskPool>,
    ) -> Result<ImmutableSegment> {
        let mut inner = self.inner.lock().unwrap();
        config.segment_name = self.segment_name.clone();
        config.table = self.table.clone();
        config.offset_range = Some((self.start_offset, inner.current_offset));
        config.created_at_millis = self.created_at_millis;
        let rows = inner.num_rows;
        let inputs = realtime::seal_inputs(&mut inner.columns, rows);
        drop(inner);
        realtime::seal_from_columnar(&self.schema, &config, inputs, rows, pool)
    }

    /// Drop rows past `offset` (completion-protocol CATCHUP/DISCARD repair
    /// never needs this in the happy path, but a replica that over-consumed
    /// relative to the committed copy truncates before re-fetching). Rolls
    /// the columnar state back too: forward-vector lengths shrink and each
    /// dictionary truncates to its surviving high-water id.
    pub fn truncate_to_offset(&self, offset: u64) {
        let mut inner = self.inner.lock().unwrap();
        if offset >= inner.current_offset {
            return;
        }
        let keep = (offset - self.start_offset) as usize;
        for column in inner.columns.iter_mut() {
            column.truncate(keep);
        }
        inner.num_rows = keep;
        inner.current_offset = offset;
        inner.epoch += 1;
        drop(inner);
        *self.cut_cache.lock().unwrap() = None;
        *self.legacy_cache.lock().unwrap() = None;
    }
}

impl std::fmt::Debug for MutableSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutableSegment")
            .field("name", &self.segment_name)
            .field("rows", &self.num_rows())
            .field("offsets", &(self.start_offset, self.current_offset()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_common::{DataType, FieldSpec, TimeUnit, Value};

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                FieldSpec::dimension("k", DataType::Long),
                FieldSpec::metric("m", DataType::Long),
                FieldSpec::time("ts", DataType::Long, TimeUnit::Seconds),
            ],
        )
        .unwrap()
    }

    fn rec(k: i64, m: i64, ts: i64) -> Record {
        Record::new(vec![Value::Long(k), Value::Long(m), Value::Long(ts)])
    }

    #[test]
    fn append_and_snapshot() {
        let ms = MutableSegment::new(schema(), "s__0__0", "t_REALTIME", 100, 0);
        ms.append(rec(1, 10, 5), 100).unwrap();
        ms.append(rec(2, 20, 6), 101).unwrap();
        assert_eq!(ms.num_rows(), 2);
        assert_eq!(ms.current_offset(), 102);

        let snap = ms.snapshot().unwrap();
        assert_eq!(snap.num_docs(), 2);
        assert_eq!(snap.metadata().offset_range, Some((100, 102)));

        // Cached until next append.
        let snap2 = ms.snapshot().unwrap();
        assert!(Arc::ptr_eq(&snap, &snap2));
        ms.append(rec(3, 30, 7), 102).unwrap();
        let snap3 = ms.snapshot().unwrap();
        assert_eq!(snap3.num_docs(), 3);
        // The earlier cut is immutable: still two docs.
        assert_eq!(snap.num_docs(), 2);
    }

    #[test]
    fn rejects_out_of_order_offsets() {
        let ms = MutableSegment::new(schema(), "s", "t", 0, 0);
        ms.append(rec(1, 1, 1), 0).unwrap();
        assert!(ms.append(rec(2, 2, 2), 2).is_err()); // gap
        assert!(ms.append(rec(2, 2, 2), 0).is_err()); // replay
        assert!(ms.append(rec(2, 2, 2), 1).is_ok());
    }

    #[test]
    fn seal_applies_index_config() {
        let ms = MutableSegment::new(schema(), "s", "t_REALTIME", 0, 42);
        for i in 0..10 {
            ms.append(rec(10 - i, i, i), i as u64).unwrap();
        }
        let sealed = ms
            .seal(BuilderConfig::new("ignored", "ignored").with_sort_columns(&["k"]))
            .unwrap();
        assert_eq!(sealed.name(), "s");
        assert_eq!(sealed.metadata().table, "t_REALTIME");
        assert_eq!(sealed.metadata().offset_range, Some((0, 10)));
        assert_eq!(sealed.metadata().created_at_millis, 42);
        assert!(sealed.column("k").unwrap().sorted.is_some());
        // Physically re-sorted by k.
        let ks: Vec<i64> = (0..10)
            .map(|d| sealed.column("k").unwrap().long(d).unwrap())
            .collect();
        let mut expect = ks.clone();
        expect.sort();
        assert_eq!(ks, expect);
    }

    #[test]
    fn truncate_to_offset() {
        let ms = MutableSegment::new(schema(), "s", "t", 10, 0);
        for i in 0..5u64 {
            ms.append(rec(i as i64, 0, 0), 10 + i).unwrap();
        }
        ms.truncate_to_offset(12);
        assert_eq!(ms.num_rows(), 2);
        assert_eq!(ms.current_offset(), 12);
        // Truncating past the end is a no-op.
        ms.truncate_to_offset(99);
        assert_eq!(ms.current_offset(), 12);
        // Can continue consuming from the truncation point.
        ms.append(rec(9, 9, 9), 12).unwrap();
        assert_eq!(ms.num_rows(), 3);
    }

    /// Over-consumed-replica repair: truncation must roll back the
    /// dictionary high-water mark and forward lengths, and the cut cache
    /// must never serve a pre-truncation view for the same offset.
    #[test]
    fn truncate_rolls_back_columnar_state() {
        let ms = MutableSegment::new(schema(), "s", "t", 0, 0);
        for i in 0..6 {
            ms.append(rec(100 + i, i, i), i as u64).unwrap();
        }
        let before = ms.cut().unwrap();
        assert_eq!(before.column("k").unwrap().dictionary.cardinality(), 6);

        ms.truncate_to_offset(4);
        let after = ms.cut().unwrap();
        assert_eq!(after.num_docs(), 4);
        // Dictionary high-water rolled back: values 104/105 are gone.
        let kd = &after.column("k").unwrap().dictionary;
        assert_eq!(kd.cardinality(), 4);
        assert_eq!(kd.max_value(), Some(Value::Long(103)));
        assert_eq!(kd.id_of(&Value::Long(104)), None);

        // Re-consume the repaired offsets with *different* rows; a cut at
        // the same high-water offset must reflect them (epoch key).
        ms.append(rec(777, 0, 9), 4).unwrap();
        ms.append(rec(888, 0, 9), 5).unwrap();
        let repaired = ms.cut().unwrap();
        assert_eq!(repaired.num_docs(), 6);
        let kd = &repaired.column("k").unwrap().dictionary;
        assert!(kd.id_of(&Value::Long(777)).is_some());
        assert!(kd.id_of(&Value::Long(104)).is_none());
        assert_eq!(repaired.metadata().offset_range, Some((0, 6)));
        // Time bounds (zone maps) reflect the repaired rows.
        assert_eq!(repaired.metadata().max_time, Some(9));
        // The pre-truncation cut is untouched.
        assert_eq!(before.num_docs(), 6);
        assert_eq!(
            before.column("k").unwrap().dictionary.max_value(),
            Some(Value::Long(105))
        );
    }

    /// The columnar seal must produce the same segment a row-wise
    /// `SegmentBuilder` build does — metadata, per-doc values, indexes.
    #[test]
    fn columnar_seal_matches_row_built_segment() {
        let mv = Schema::new(
            "t",
            vec![
                FieldSpec::dimension("k", DataType::Long),
                FieldSpec::dimension("c", DataType::String),
                FieldSpec::multi_value_dimension("tags", DataType::String),
                FieldSpec::metric("m", DataType::Double),
                FieldSpec::time("ts", DataType::Long, TimeUnit::Seconds),
            ],
        )
        .unwrap();
        let row = |i: i64| {
            Record::new(vec![
                Value::Long(i % 7),
                Value::String(format!("c{}", i % 3)),
                Value::StringArray(vec![format!("t{}", i % 5), format!("t{}", i % 2)]),
                Value::Double((i * 13 % 29) as f64 / 2.0),
                Value::Long(1000 + i),
            ])
        };
        let cfg = || {
            BuilderConfig::new("seg", "t_REALTIME")
                .with_sort_columns(&["k"])
                .with_inverted_columns(&["c"])
                .with_bloom_columns(&["c"])
                .with_offset_range(0, 500)
        };

        let ms = MutableSegment::new(mv.clone(), "seg", "t_REALTIME", 0, 0);
        let mut builder = SegmentBuilder::new(mv, cfg()).unwrap();
        for i in 0..500 {
            ms.append(row(i), i as u64).unwrap();
            builder.add(row(i)).unwrap();
        }
        let sealed = ms.seal(cfg()).unwrap();
        let reference = builder.build().unwrap();

        assert_eq!(sealed.metadata(), reference.metadata());
        for d in 0..500u32 {
            for col in ["k", "c", "tags", "m", "ts"] {
                assert_eq!(
                    sealed.column(col).unwrap().value(d),
                    reference.column(col).unwrap().value(d),
                    "doc {d} column {col}"
                );
            }
        }
        assert_eq!(
            sealed.column("k").unwrap().sorted,
            reference.column("k").unwrap().sorted
        );
        assert_eq!(
            sealed.column("c").unwrap().inverted,
            reference.column("c").unwrap().inverted
        );
    }

    /// Cuts must agree with the legacy rebuilt snapshot on every doc.
    #[test]
    fn cut_matches_legacy_rebuild() {
        let ms = MutableSegment::new(schema(), "s", "t", 0, 0);
        for i in 0..1500 {
            ms.append(rec(i % 11, i * 3, 50 + i % 9), i as u64).unwrap();
        }
        let cut = ms.cut().unwrap();
        let legacy = ms.snapshot_rebuild().unwrap();
        assert_eq!(cut.metadata().num_docs, legacy.metadata().num_docs);
        assert_eq!(cut.metadata().min_time, legacy.metadata().min_time);
        assert_eq!(cut.metadata().max_time, legacy.metadata().max_time);
        for d in 0..1500u32 {
            for col in ["k", "m", "ts"] {
                assert_eq!(
                    cut.column(col).unwrap().value(d),
                    legacy.column(col).unwrap().value(d),
                    "doc {d} column {col}"
                );
            }
        }
    }
}
