//! Per-column dictionaries.
//!
//! A dictionary maps each distinct column value to a dense id. Values are
//! stored *sorted*, so ids preserve value order: range predicates translate
//! to contiguous dictionary-id ranges, which both the sorted-column index
//! and range filters exploit.

use crate::DictId;
use pinot_common::{DataType, Value};

/// Typed sorted dictionary of distinct values.
#[derive(Debug, Clone, PartialEq)]
pub enum Dictionary {
    Int(Vec<i32>),
    Long(Vec<i64>),
    Float(Vec<f32>),
    Double(Vec<f64>),
    String(Vec<String>),
    Boolean(Vec<bool>),
}

impl Dictionary {
    /// Build a dictionary from raw (scalar) values; sorts and dedups.
    pub fn build(data_type: DataType, values: impl IntoIterator<Item = Value>) -> Dictionary {
        match data_type {
            DataType::Int => {
                let mut v: Vec<i32> = values
                    .into_iter()
                    .filter_map(|x| x.as_i64().map(|n| n as i32))
                    .collect();
                v.sort_unstable();
                v.dedup();
                Dictionary::Int(v)
            }
            DataType::Long => {
                let mut v: Vec<i64> = values.into_iter().filter_map(|x| x.as_i64()).collect();
                v.sort_unstable();
                v.dedup();
                Dictionary::Long(v)
            }
            DataType::Float => {
                let mut v: Vec<f32> = values
                    .into_iter()
                    .filter_map(|x| x.as_f64().map(|n| n as f32))
                    .collect();
                v.sort_unstable_by(f32::total_cmp);
                v.dedup_by(|a, b| a.total_cmp(b).is_eq());
                Dictionary::Float(v)
            }
            DataType::Double => {
                let mut v: Vec<f64> = values.into_iter().filter_map(|x| x.as_f64()).collect();
                v.sort_unstable_by(f64::total_cmp);
                v.dedup_by(|a, b| a.total_cmp(b).is_eq());
                Dictionary::Double(v)
            }
            DataType::String => {
                let mut v: Vec<String> = values
                    .into_iter()
                    .filter_map(|x| match x {
                        Value::String(s) => Some(s),
                        _ => None,
                    })
                    .collect();
                v.sort_unstable();
                v.dedup();
                Dictionary::String(v)
            }
            DataType::Boolean => {
                let mut v: Vec<bool> = values
                    .into_iter()
                    .filter_map(|x| match x {
                        Value::Boolean(b) => Some(b),
                        _ => None,
                    })
                    .collect();
                v.sort_unstable();
                v.dedup();
                Dictionary::Boolean(v)
            }
        }
    }

    pub fn data_type(&self) -> DataType {
        match self {
            Dictionary::Int(_) => DataType::Int,
            Dictionary::Long(_) => DataType::Long,
            Dictionary::Float(_) => DataType::Float,
            Dictionary::Double(_) => DataType::Double,
            Dictionary::String(_) => DataType::String,
            Dictionary::Boolean(_) => DataType::Boolean,
        }
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        match self {
            Dictionary::Int(v) => v.len(),
            Dictionary::Long(v) => v.len(),
            Dictionary::Float(v) => v.len(),
            Dictionary::Double(v) => v.len(),
            Dictionary::String(v) => v.len(),
            Dictionary::Boolean(v) => v.len(),
        }
    }

    /// Dictionary id of an exact value, if present. Values of a mismatched
    /// type return `None` (a predicate on the wrong type matches nothing).
    pub fn id_of(&self, value: &Value) -> Option<DictId> {
        let r = match self {
            Dictionary::Int(v) => {
                let x = int_of(value)?;
                v.binary_search(&x).ok()
            }
            Dictionary::Long(v) => {
                let x = value.as_i64()?;
                v.binary_search(&x).ok()
            }
            Dictionary::Float(v) => {
                let x = value.as_f64()? as f32;
                v.binary_search_by(|p| p.total_cmp(&x)).ok()
            }
            Dictionary::Double(v) => {
                let x = value.as_f64()?;
                v.binary_search_by(|p| p.total_cmp(&x)).ok()
            }
            Dictionary::String(v) => {
                let x = value.as_str()?;
                v.binary_search_by(|p| p.as_str().cmp(x)).ok()
            }
            Dictionary::Boolean(v) => {
                let x = match value {
                    Value::Boolean(b) => *b,
                    _ => return None,
                };
                v.binary_search(&x).ok()
            }
        };
        r.map(|i| i as DictId)
    }

    /// The contiguous dict-id range `[lo, hi)` of values within
    /// `[min, max]` (inclusive bounds, either may be unbounded).
    /// Because the dictionary is sorted, every range predicate reduces to
    /// one id interval.
    pub fn id_range(&self, min: Option<&Value>, max: Option<&Value>) -> (DictId, DictId) {
        let lo = match min {
            None => 0usize,
            Some(v) => self.partition_point_lt(v),
        };
        let hi = match max {
            None => self.cardinality(),
            Some(v) => self.partition_point_le(v),
        };
        (lo as DictId, hi.max(lo) as DictId)
    }

    /// Index of the first value >= v.
    fn partition_point_lt(&self, v: &Value) -> usize {
        match self {
            Dictionary::Int(d) => match int_of(v) {
                Some(x) => d.partition_point(|p| *p < x),
                None => d.len(),
            },
            Dictionary::Long(d) => match v.as_i64() {
                Some(x) => d.partition_point(|p| *p < x),
                None => d.len(),
            },
            Dictionary::Float(d) => match v.as_f64() {
                Some(x) => d.partition_point(|p| p.total_cmp(&(x as f32)).is_lt()),
                None => d.len(),
            },
            Dictionary::Double(d) => match v.as_f64() {
                Some(x) => d.partition_point(|p| p.total_cmp(&x).is_lt()),
                None => d.len(),
            },
            Dictionary::String(d) => match v.as_str() {
                Some(x) => d.partition_point(|p| p.as_str() < x),
                None => d.len(),
            },
            Dictionary::Boolean(d) => match v {
                Value::Boolean(x) => d.partition_point(|p| (*p as u8) < (*x as u8)),
                _ => d.len(),
            },
        }
    }

    /// Index just past the last value <= v.
    fn partition_point_le(&self, v: &Value) -> usize {
        match self {
            Dictionary::Int(d) => match int_of(v) {
                Some(x) => d.partition_point(|p| *p <= x),
                None => 0,
            },
            Dictionary::Long(d) => match v.as_i64() {
                Some(x) => d.partition_point(|p| *p <= x),
                None => 0,
            },
            Dictionary::Float(d) => match v.as_f64() {
                Some(x) => d.partition_point(|p| p.total_cmp(&(x as f32)).is_le()),
                None => 0,
            },
            Dictionary::Double(d) => match v.as_f64() {
                Some(x) => d.partition_point(|p| p.total_cmp(&x).is_le()),
                None => 0,
            },
            Dictionary::String(d) => match v.as_str() {
                Some(x) => d.partition_point(|p| p.as_str() <= x),
                None => 0,
            },
            Dictionary::Boolean(d) => match v {
                Value::Boolean(x) => d.partition_point(|p| (*p as u8) <= (*x as u8)),
                _ => 0,
            },
        }
    }

    /// Fraction of distinct values in the dict-id interval `[lo, hi)` —
    /// the NDV-uniform selectivity estimate a planner falls back to when
    /// no exact per-value statistic (sorted run, posting length) exists.
    /// Always in `[0, 1]`; empty dictionaries and inverted intervals
    /// estimate zero.
    pub fn ndv_fraction(&self, lo: DictId, hi: DictId) -> f64 {
        let n = self.cardinality();
        if n == 0 || lo >= hi {
            return 0.0;
        }
        (((hi - lo) as f64) / n as f64).clamp(0.0, 1.0)
    }

    /// Value for a dictionary id. Panics when out of range.
    pub fn value_of(&self, id: DictId) -> Value {
        let i = id as usize;
        match self {
            Dictionary::Int(v) => Value::Int(v[i]),
            Dictionary::Long(v) => Value::Long(v[i]),
            Dictionary::Float(v) => Value::Float(v[i]),
            Dictionary::Double(v) => Value::Double(v[i]),
            Dictionary::String(v) => Value::String(v[i].clone()),
            Dictionary::Boolean(v) => Value::Boolean(v[i]),
        }
    }

    /// Numeric value for a dictionary id (aggregation fast path).
    #[inline]
    pub fn numeric_of(&self, id: DictId) -> Option<f64> {
        let i = id as usize;
        match self {
            Dictionary::Int(v) => Some(v[i] as f64),
            Dictionary::Long(v) => Some(v[i] as f64),
            Dictionary::Float(v) => Some(v[i] as f64),
            Dictionary::Double(v) => Some(v[i]),
            Dictionary::Boolean(v) => Some(v[i] as u8 as f64),
            Dictionary::String(_) => None,
        }
    }

    /// Integer value for a dictionary id (time-column fast path).
    #[inline]
    pub fn long_of(&self, id: DictId) -> Option<i64> {
        let i = id as usize;
        match self {
            Dictionary::Int(v) => Some(v[i] as i64),
            Dictionary::Long(v) => Some(v[i]),
            Dictionary::Boolean(v) => Some(v[i] as i64),
            _ => None,
        }
    }

    pub fn min_value(&self) -> Option<Value> {
        if self.cardinality() == 0 {
            None
        } else {
            Some(self.value_of(0))
        }
    }

    pub fn max_value(&self) -> Option<Value> {
        match self.cardinality() {
            0 => None,
            n => Some(self.value_of((n - 1) as DictId)),
        }
    }

    /// Approximate heap bytes.
    pub fn size_bytes(&self) -> usize {
        let base = std::mem::size_of::<Self>();
        base + match self {
            Dictionary::Int(v) => v.len() * 4,
            Dictionary::Long(v) => v.len() * 8,
            Dictionary::Float(v) => v.len() * 4,
            Dictionary::Double(v) => v.len() * 8,
            Dictionary::String(v) => v.iter().map(|s| s.len() + 24).sum(),
            Dictionary::Boolean(v) => v.len(),
        }
    }
}

fn int_of(v: &Value) -> Option<i32> {
    match v.as_i64() {
        Some(x) if x >= i32::MIN as i64 && x <= i32::MAX as i64 => Some(x as i32),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_and_dedups() {
        let d = Dictionary::build(
            DataType::String,
            ["b", "a", "c", "a"].iter().map(|s| Value::from(*s)),
        );
        assert_eq!(d.cardinality(), 3);
        assert_eq!(d.value_of(0), Value::from("a"));
        assert_eq!(d.value_of(2), Value::from("c"));
    }

    #[test]
    fn id_of_exact_lookup() {
        let d = Dictionary::build(DataType::Long, [5i64, 1, 9].map(Value::from));
        assert_eq!(d.id_of(&Value::Long(1)), Some(0));
        assert_eq!(d.id_of(&Value::Long(5)), Some(1));
        assert_eq!(d.id_of(&Value::Long(9)), Some(2));
        assert_eq!(d.id_of(&Value::Long(2)), None);
        // Cross-type numeric lookup works for ints into long dictionaries.
        assert_eq!(d.id_of(&Value::Int(5)), Some(1));
        // Wrong type matches nothing.
        assert_eq!(d.id_of(&Value::String("5".into())), None);
    }

    #[test]
    fn id_range_translates_predicates() {
        let d = Dictionary::build(DataType::Int, [10i32, 20, 30, 40].map(Value::from));
        // 15 <= x <= 35  →  ids {1, 2} = [1, 3)
        assert_eq!(
            d.id_range(Some(&Value::Int(15)), Some(&Value::Int(35))),
            (1, 3)
        );
        // x >= 20 → [1, 4)
        assert_eq!(d.id_range(Some(&Value::Int(20)), None), (1, 4));
        // x <= 10 → [0, 1)
        assert_eq!(d.id_range(None, Some(&Value::Int(10))), (0, 1));
        // Empty range never inverts.
        assert_eq!(
            d.id_range(Some(&Value::Int(50)), Some(&Value::Int(60))),
            (4, 4)
        );
        assert_eq!(
            d.id_range(Some(&Value::Int(35)), Some(&Value::Int(15))),
            (3, 3)
        );
    }

    #[test]
    fn string_ranges() {
        let d = Dictionary::build(
            DataType::String,
            ["apple", "banana", "cherry"].map(Value::from),
        );
        assert_eq!(
            d.id_range(Some(&Value::from("b")), Some(&Value::from("cz"))),
            (1, 3)
        );
    }

    #[test]
    fn numeric_and_long_views() {
        let d = Dictionary::build(DataType::Double, [1.5f64, 2.5].map(Value::from));
        assert_eq!(d.numeric_of(1), Some(2.5));
        assert_eq!(d.long_of(0), None);
        let l = Dictionary::build(DataType::Long, [7i64].map(Value::from));
        assert_eq!(l.long_of(0), Some(7));
        let s = Dictionary::build(DataType::String, ["x"].map(Value::from));
        assert_eq!(s.numeric_of(0), None);
    }

    #[test]
    fn min_max() {
        let d = Dictionary::build(DataType::Int, [3i32, 1, 2].map(Value::from));
        assert_eq!(d.min_value(), Some(Value::Int(1)));
        assert_eq!(d.max_value(), Some(Value::Int(3)));
        let e = Dictionary::build(DataType::Int, std::iter::empty());
        assert_eq!(e.min_value(), None);
        assert_eq!(e.max_value(), None);
    }

    #[test]
    fn float_total_order_handles_nan() {
        let d = Dictionary::build(
            DataType::Double,
            [f64::NAN, 1.0, f64::NAN, 2.0].map(Value::from),
        );
        // NaN dedups to one entry and sorts last under total order.
        assert_eq!(d.cardinality(), 3);
        assert!(matches!(d.value_of(2), Value::Double(x) if x.is_nan()));
    }

    #[test]
    fn boolean_dictionary() {
        let d = Dictionary::build(DataType::Boolean, [true, false, true].map(Value::from));
        assert_eq!(d.cardinality(), 2);
        assert_eq!(d.id_of(&Value::Boolean(false)), Some(0));
        assert_eq!(d.id_of(&Value::Boolean(true)), Some(1));
    }
}
