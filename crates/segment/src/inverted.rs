//! Bitmap inverted indexes.
//!
//! One roaring bitmap of matching document ids per dictionary id. Built
//! on demand (the paper's index file is append-only precisely so inverted
//! indexes can be added after the fact, §3.2).

use crate::forward::ForwardIndex;
use crate::{DictId, DocId};
use pinot_bitmap::RoaringBitmap;

/// Inverted index for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct InvertedIndex {
    /// Indexed by dict id.
    bitmaps: Vec<RoaringBitmap>,
}

impl InvertedIndex {
    /// Build from a forward index; `cardinality` is the dictionary size.
    /// Multi-value documents contribute one posting per element.
    pub fn build(forward: &ForwardIndex, cardinality: usize) -> InvertedIndex {
        let mut bitmaps = vec![RoaringBitmap::new(); cardinality];
        let mut scratch = Vec::new();
        for doc in 0..forward.num_docs() as DocId {
            forward.get_multi(doc, &mut scratch);
            for &id in &scratch {
                bitmaps[id as usize].push_back(doc);
            }
        }
        for bm in &mut bitmaps {
            bm.optimize();
        }
        InvertedIndex { bitmaps }
    }

    pub fn cardinality(&self) -> usize {
        self.bitmaps.len()
    }

    /// Documents containing the given dictionary id.
    pub fn postings(&self, id: DictId) -> &RoaringBitmap {
        &self.bitmaps[id as usize]
    }

    /// Union of postings over a dict-id range `[lo, hi)` — a range
    /// predicate's document set. Bulk container-at-a-time union: one
    /// k-way fold instead of k-1 pairwise intermediates.
    pub fn postings_range(&self, lo: DictId, hi: DictId) -> RoaringBitmap {
        let hi = hi.min(self.bitmaps.len() as DictId);
        if lo >= hi {
            return RoaringBitmap::new();
        }
        let refs: Vec<&RoaringBitmap> = self.bitmaps[lo as usize..hi as usize].iter().collect();
        RoaringBitmap::union_many(&refs)
    }

    /// Union of postings for an explicit id set (IN predicates), bulk
    /// container-at-a-time. Out-of-range ids are ignored.
    pub fn postings_set(&self, ids: &[DictId]) -> RoaringBitmap {
        let refs: Vec<&RoaringBitmap> = ids
            .iter()
            .filter(|&&id| (id as usize) < self.bitmaps.len())
            .map(|&id| &self.bitmaps[id as usize])
            .collect();
        RoaringBitmap::union_many(&refs)
    }

    /// Number of documents carrying the given dict id (0 for ids outside
    /// the dictionary) — the exact per-value doc frequency the planner's
    /// selectivity estimator reads without materializing any union.
    pub fn doc_frequency(&self, id: DictId) -> u64 {
        self.bitmaps.get(id as usize).map_or(0, RoaringBitmap::len)
    }

    /// Total documents over a dict-id range `[lo, hi)` counted per
    /// posting list. For single-value columns postings are disjoint, so
    /// this is the exact range selectivity numerator; for multi-value
    /// columns it is an upper bound.
    pub fn doc_frequency_range(&self, lo: DictId, hi: DictId) -> u64 {
        let hi = hi.min(self.bitmaps.len() as DictId);
        (lo..hi).map(|id| self.bitmaps[id as usize].len()).sum()
    }

    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .bitmaps
                .iter()
                .map(RoaringBitmap::size_bytes)
                .sum::<usize>()
    }

    pub(crate) fn bitmaps(&self) -> &[RoaringBitmap] {
        &self.bitmaps
    }

    pub(crate) fn from_bitmaps(bitmaps: Vec<RoaringBitmap>) -> InvertedIndex {
        InvertedIndex { bitmaps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_from_single_value() {
        // docs:    0  1  2  3  4
        // dictids: 1  0  1  2  0
        let f = ForwardIndex::single(&[1, 0, 1, 2, 0]);
        let inv = InvertedIndex::build(&f, 3);
        assert_eq!(inv.postings(0).to_vec(), vec![1, 4]);
        assert_eq!(inv.postings(1).to_vec(), vec![0, 2]);
        assert_eq!(inv.postings(2).to_vec(), vec![3]);
    }

    #[test]
    fn build_from_multi_value() {
        let f = ForwardIndex::multi(&[vec![0, 1], vec![1], vec![2, 0]]);
        let inv = InvertedIndex::build(&f, 3);
        assert_eq!(inv.postings(0).to_vec(), vec![0, 2]);
        assert_eq!(inv.postings(1).to_vec(), vec![0, 1]);
        assert_eq!(inv.postings(2).to_vec(), vec![2]);
    }

    #[test]
    fn range_and_set_unions() {
        let f = ForwardIndex::single(&[0, 1, 2, 3, 2, 1]);
        let inv = InvertedIndex::build(&f, 4);
        assert_eq!(inv.postings_range(1, 3).to_vec(), vec![1, 2, 4, 5]);
        assert_eq!(inv.postings_set(&[0, 3]).to_vec(), vec![0, 3]);
        // Out-of-range ids are ignored, empty ranges yield empty bitmaps.
        assert!(inv.postings_range(3, 3).is_empty());
        assert_eq!(inv.postings_set(&[99]).len(), 0);
    }

    #[test]
    fn every_doc_appears_exactly_once_for_sv() {
        let ids: Vec<u32> = (0..10_000).map(|i| i % 17).collect();
        let f = ForwardIndex::single(&ids);
        let inv = InvertedIndex::build(&f, 17);
        let total: u64 = (0..17).map(|id| inv.postings(id).len()).sum();
        assert_eq!(total, 10_000);
    }
}
