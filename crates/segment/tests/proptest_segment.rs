//! Property tests: segment build + persist must preserve record multisets
//! and index consistency for arbitrary data.

use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
use pinot_segment::persist;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            FieldSpec::dimension("k", DataType::Long),
            FieldSpec::dimension("c", DataType::String),
            FieldSpec::metric("m", DataType::Double),
            FieldSpec::time("ts", DataType::Long, TimeUnit::Seconds),
        ],
    )
    .unwrap()
}

#[derive(Debug, Clone)]
struct Row {
    k: i64,
    c: String,
    m: f64,
    ts: i64,
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        -50i64..50,
        prop::sample::select(vec!["us", "de", "fr", "jp", "br"]),
        -1000f64..1000f64,
        0i64..10_000,
    )
        .prop_map(|(k, c, m, ts)| Row {
            k,
            c: c.to_string(),
            m,
            ts,
        })
}

fn build(rows: &[Row], sort: bool, inverted: bool) -> pinot_segment::ImmutableSegment {
    let mut cfg = BuilderConfig::new("seg", "t_OFFLINE");
    if sort {
        cfg = cfg.with_sort_columns(&["k"]);
    }
    if inverted {
        cfg = cfg.with_inverted_columns(&["c"]);
    }
    let mut b = SegmentBuilder::new(schema(), cfg).unwrap();
    for r in rows {
        b.add(Record::new(vec![
            Value::Long(r.k),
            Value::String(r.c.clone()),
            Value::Double(r.m),
            Value::Long(r.ts),
        ]))
        .unwrap();
    }
    b.build().unwrap()
}

fn record_multiset(seg: &pinot_segment::ImmutableSegment) -> Vec<String> {
    let mut v: Vec<String> = (0..seg.num_docs())
        .map(|d| format!("{:?}", seg.record(d)))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn build_preserves_record_multiset(rows in prop::collection::vec(row_strategy(), 0..200), sort in any::<bool>()) {
        let seg = build(&rows, sort, false);
        prop_assert_eq!(seg.num_docs() as usize, rows.len());
        let mut expect: Vec<String> = rows.iter()
            .map(|r| format!("{:?}", vec![
                Value::Long(r.k), Value::String(r.c.clone()), Value::Double(r.m), Value::Long(r.ts)
            ]))
            .collect();
        expect.sort();
        prop_assert_eq!(record_multiset(&seg), expect);
    }

    #[test]
    fn sorted_segment_is_physically_ordered(rows in prop::collection::vec(row_strategy(), 1..200)) {
        let seg = build(&rows, true, false);
        let col = seg.column("k").unwrap();
        let vals: Vec<i64> = (0..seg.num_docs()).map(|d| col.long(d).unwrap()).collect();
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        // Sorted index ranges partition the doc space and agree with values.
        let sorted = col.sorted.as_ref().unwrap();
        let mut covered = 0u32;
        for id in 0..sorted.cardinality() as u32 {
            let (s, e) = sorted.doc_range(id);
            prop_assert_eq!(s, covered);
            prop_assert!(e > s);
            let expect = col.dictionary.value_of(id).as_i64().unwrap();
            for d in s..e {
                prop_assert_eq!(vals[d as usize], expect);
            }
            covered = e;
        }
        prop_assert_eq!(covered, seg.num_docs());
    }

    #[test]
    fn inverted_index_matches_scan(rows in prop::collection::vec(row_strategy(), 0..200)) {
        let seg = build(&rows, false, true);
        let col = seg.column("c").unwrap();
        let inv = col.inverted.as_ref().unwrap();
        for id in 0..col.dictionary.cardinality() as u32 {
            let expect: Vec<u32> = (0..seg.num_docs())
                .filter(|&d| col.dict_id(d) == id)
                .collect();
            prop_assert_eq!(inv.postings(id).to_vec(), expect);
        }
    }

    #[test]
    fn persist_round_trip(rows in prop::collection::vec(row_strategy(), 0..150), sort in any::<bool>(), inv in any::<bool>()) {
        let seg = build(&rows, sort, inv);
        let blob = persist::serialize(&seg);
        let back = persist::deserialize(&blob).unwrap();
        prop_assert_eq!(back.num_docs(), seg.num_docs());
        for d in 0..seg.num_docs() {
            prop_assert_eq!(back.record(d), seg.record(d));
        }
        prop_assert_eq!(back.metadata().min_time, seg.metadata().min_time);
        prop_assert_eq!(back.metadata().max_time, seg.metadata().max_time);
        prop_assert_eq!(
            back.metadata().columns.len(),
            seg.metadata().columns.len()
        );
    }

    #[test]
    fn time_metadata_matches_data(rows in prop::collection::vec(row_strategy(), 1..100)) {
        let seg = build(&rows, false, false);
        let min = rows.iter().map(|r| r.ts).min().unwrap();
        let max = rows.iter().map(|r| r.ts).max().unwrap();
        prop_assert_eq!(seg.metadata().min_time, Some(min));
        prop_assert_eq!(seg.metadata().max_time, Some(max));
    }
}

mod bloom {
    use pinot_segment::BloomFilter;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The defining bloom-filter guarantee: every inserted key answers
        /// "maybe present" — no false negatives, for any key set, bits/key
        /// setting, or seed.
        #[test]
        fn no_false_negatives(
            keys in prop::collection::vec(any::<u64>(), 0..500),
            bits_per_key in 6u32..16,
            seed in any::<u64>(),
        ) {
            let mut bloom = BloomFilter::new(keys.len(), bits_per_key, seed);
            for k in &keys {
                bloom.insert(&k.to_le_bytes());
            }
            for k in &keys {
                prop_assert!(bloom.might_contain(&k.to_le_bytes()));
            }
        }
    }

    proptest! {
        // Statistical property — fewer, bigger cases.
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Measured false-positive rate stays within 2× of the configured
        /// target (the blocked layout costs a little accuracy vs the
        /// classic filter; 2× is the contract the sizing math promises).
        #[test]
        fn fp_rate_within_twice_target(seed in any::<u64>(), bits_per_key in 8u32..14) {
            let num_keys = 4000usize;
            let mut bloom = BloomFilter::new(num_keys, bits_per_key, seed);
            let inserted: HashSet<u64> = (0..num_keys as u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed)
                .collect();
            for k in &inserted {
                bloom.insert(&k.to_le_bytes());
            }
            let probes = 20_000u64;
            let mut false_positives = 0u64;
            for i in 0..probes {
                let k = (i.wrapping_add(1) << 32).wrapping_mul(0x2545_f491_4f6c_dd1d) ^ !seed;
                if inserted.contains(&k) {
                    continue;
                }
                if bloom.might_contain(&k.to_le_bytes()) {
                    false_positives += 1;
                }
            }
            let measured = false_positives as f64 / probes as f64;
            let target = bloom.target_fp_rate();
            prop_assert!(
                measured < target * 2.0,
                "measured fp {measured:.5} vs target {target:.5} (bits/key {bits_per_key})"
            );
        }
    }
}

mod block_decode {
    use pinot_segment::bitpack::{bits_needed, PackedIntVec, BLOCK};
    use pinot_segment::forward::ForwardIndex;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// `unpack_block` ≡ repeated `get` for every width 1..=32,
        /// including runs that straddle word boundaries and full
        /// BLOCK-sized reads (ISSUE 4 kernel contract).
        #[test]
        fn unpack_block_matches_repeated_get(
            bits in 1u32..=32,
            len in 1usize..(2 * BLOCK),
            seed in any::<u64>(),
            start_frac in 0.0f64..1.0,
            n_frac in 0.0f64..1.0,
        ) {
            let max = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
            let mut x = seed | 1;
            let values: Vec<u32> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((x >> 33) as u32) & max
                })
                .collect();
            let mut pv = PackedIntVec::with_capacity(bits_needed(max.min(values.iter().copied().max().unwrap_or(0)).max(1)), len);
            for &v in &values {
                pv.push(v);
            }
            let start = ((len - 1) as f64 * start_frac) as usize;
            let n = 1 + ((len - start - 1) as f64 * n_frac) as usize;
            let mut out = vec![0u32; n];
            pv.unpack_block(start, &mut out);
            for (i, &got) in out.iter().enumerate() {
                prop_assert_eq!(got, pv.get(start + i));
                prop_assert_eq!(got, values[start + i]);
            }
        }

        /// `read_block` ≡ per-doc `get` on the forward index at arbitrary
        /// offsets and lengths, including block-straddling reads.
        #[test]
        fn read_block_matches_per_doc_get(
            ids in prop::collection::vec(0u32..500, 1..(BLOCK + 300)),
            start_frac in 0.0f64..1.0,
            n_frac in 0.0f64..1.0,
        ) {
            let fwd = ForwardIndex::single(&ids);
            let len = ids.len();
            let start = ((len - 1) as f64 * start_frac) as usize;
            let n = 1 + ((len - start - 1) as f64 * n_frac) as usize;
            let mut out = vec![0u32; n];
            fwd.read_block(start as u32, &mut out);
            for (i, &got) in out.iter().enumerate() {
                prop_assert_eq!(got, fwd.get((start + i) as u32));
            }
        }
    }
}
