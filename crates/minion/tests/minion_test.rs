//! Minion task-framework tests against a real controller stack.

use bytes::Bytes;
use pinot_cluster::{ClusterManager, Participant, SegmentState};
use pinot_common::config::TableConfig;
use pinot_common::ids::InstanceId;
use pinot_common::time::Clock;
use pinot_common::{DataType, FieldSpec, Record, Result, Schema, Value};
use pinot_controller::{Controller, ControllerGroup};
use pinot_metastore::MetaStore;
use pinot_minion::{Minion, MinionTask, PurgeSpec, PurgeTask, ReindexTask};
use pinot_objstore::MemoryObjectStore;
use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
use pinot_stream::StreamRegistry;
use std::sync::Arc;

/// A do-nothing participant so segment assignment succeeds.
struct NullServer(InstanceId);

impl Participant for NullServer {
    fn instance_id(&self) -> InstanceId {
        self.0.clone()
    }
    fn handle_transition(&self, _: &str, _: &str, _: SegmentState, _: SegmentState) -> Result<()> {
        Ok(())
    }
}

fn setup() -> (Arc<Controller>, Arc<Minion>) {
    let metastore = MetaStore::new();
    let cluster = ClusterManager::new(metastore.clone());
    cluster.register_participant(Arc::new(NullServer(InstanceId::server(1))));
    let controller = Controller::new(
        1,
        metastore.clone(),
        cluster,
        MemoryObjectStore::shared(),
        StreamRegistry::new(),
        Clock::manual(0),
    );
    assert!(controller.try_become_leader());
    let group = ControllerGroup::new(metastore);
    group.add(Arc::clone(&controller));
    let minion = Minion::new(1, group);
    (controller, minion)
}

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            FieldSpec::dimension("member", DataType::Long),
            FieldSpec::metric("m", DataType::Long),
        ],
    )
    .unwrap()
}

fn upload(controller: &Controller, name: &str, members: &[i64]) {
    let mut b = SegmentBuilder::new(schema(), BuilderConfig::new(name, "t_OFFLINE")).unwrap();
    for m in members {
        b.add(Record::new(vec![Value::Long(*m), Value::Long(1)]))
            .unwrap();
    }
    controller
        .upload_segment(
            "t_OFFLINE",
            Bytes::from(pinot_segment::persist::serialize(&b.build().unwrap())),
        )
        .unwrap();
}

#[test]
fn purge_task_through_framework() {
    let (controller, minion) = setup();
    controller
        .create_table(TableConfig::offline("t"), schema())
        .unwrap();
    upload(&controller, "t__0", &[1, 2, 3, 2, 1]);
    upload(&controller, "t__1", &[4, 5, 6]);

    let task = PurgeTask(PurgeSpec {
        table: "t_OFFLINE".into(),
        column: "member".into(),
        values: vec![Value::Long(2), Value::Long(5)],
    });
    assert_eq!(task.name(), "purge");
    let report = minion.run(&task).unwrap();
    assert_eq!(report.segments_processed, 2);
    assert_eq!(report.segments_rewritten, 2);
    assert_eq!(report.records_removed, 3);

    // Rewritten blobs no longer contain the purged members.
    for seg in controller.list_segments("t_OFFLINE") {
        let blob = controller.download_segment("t_OFFLINE", &seg).unwrap();
        let parsed = pinot_segment::persist::deserialize(&blob).unwrap();
        for d in 0..parsed.num_docs() {
            let member = parsed.record(d)[0].as_i64().unwrap();
            assert!(member != 2 && member != 5, "{seg} still has {member}");
        }
    }

    // Idempotent: a second purge removes nothing.
    let report = minion.run(&task).unwrap();
    assert_eq!(report.records_removed, 0);
    assert_eq!(report.segments_rewritten, 0);
}

#[test]
fn reindex_task_applies_current_config() {
    let (controller, minion) = setup();
    controller
        .create_table(TableConfig::offline("t"), schema())
        .unwrap();
    upload(&controller, "t__0", &[1, 2, 3]);

    // Blob initially has no sorted layout.
    let blob = controller.download_segment("t_OFFLINE", "t__0").unwrap();
    let parsed = pinot_segment::persist::deserialize(&blob).unwrap();
    assert!(!parsed.metadata().column("member").unwrap().is_sorted);

    // Operator adds a sorted column; the reindex task rebuilds blobs.
    controller
        .update_table_config(TableConfig::offline("t").with_sorted_column("member"))
        .unwrap();
    let report = minion.run(&ReindexTask("t_OFFLINE".into())).unwrap();
    assert_eq!(report.segments_rewritten, 1);

    let blob = controller.download_segment("t_OFFLINE", "t__0").unwrap();
    let parsed = pinot_segment::persist::deserialize(&blob).unwrap();
    assert!(parsed.metadata().column("member").unwrap().is_sorted);
    assert_eq!(parsed.num_docs(), 3);
}

#[test]
fn purge_unknown_column_errors() {
    let (controller, minion) = setup();
    controller
        .create_table(TableConfig::offline("t"), schema())
        .unwrap();
    upload(&controller, "t__0", &[1]);
    let err = minion
        .run_purge(&PurgeSpec {
            table: "t_OFFLINE".into(),
            column: "nope".into(),
            values: vec![Value::Long(1)],
        })
        .unwrap_err();
    assert_eq!(err.kind(), "schema");
}
