//! Minions: compute-intensive maintenance tasks (§3.2).
//!
//! Minions execute tasks assigned by the controller's job scheduling
//! system. The task framework is extensible (new task types plug in via
//! [`MinionTask`]); the two built-in tasks mirror the paper's examples:
//!
//! * **purge** — LinkedIn must sometimes expunge member-specific data for
//!   legal compliance. Since segments are immutable, the minion downloads
//!   each segment, removes the unwanted records, rebuilds and reindexes the
//!   segment, and uploads it back, replacing the original.
//! * **reindex** — rebuild segments with the table's *current* index
//!   configuration, so index changes roll out without user impact (§4.1).

use bytes::Bytes;
use pinot_common::config::TableConfig;
use pinot_common::ids::InstanceId;
use pinot_common::{PinotError, Record, Result, Value};
use pinot_controller::ControllerGroup;
use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
use std::sync::Arc;

/// What a finished task reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskReport {
    pub task: String,
    pub segments_processed: usize,
    pub segments_rewritten: usize,
    pub records_removed: u64,
}

/// A pluggable maintenance task.
pub trait MinionTask: Send + Sync {
    fn name(&self) -> &str;
    fn run(&self, minion: &Minion) -> Result<TaskReport>;
}

/// Which records a purge removes: rows whose `column` matches any of
/// `values`.
#[derive(Debug, Clone)]
pub struct PurgeSpec {
    pub table: String,
    pub column: String,
    pub values: Vec<Value>,
}

/// One minion instance.
pub struct Minion {
    id: InstanceId,
    controllers: ControllerGroup,
}

impl Minion {
    pub fn new(n: usize, controllers: ControllerGroup) -> Arc<Minion> {
        Arc::new(Minion {
            id: InstanceId::minion(n),
            controllers,
        })
    }

    pub fn id(&self) -> &InstanceId {
        &self.id
    }

    fn leader(&self) -> Result<Arc<pinot_controller::Controller>> {
        self.controllers
            .leader()
            .ok_or_else(|| PinotError::Cluster("no lead controller".into()))
    }

    /// Run any task through the framework.
    pub fn run(&self, task: &dyn MinionTask) -> Result<TaskReport> {
        task.run(self)
    }

    /// Purge matching records from every segment of a table (download →
    /// expunge → rebuild → re-upload, replacing the original segments).
    pub fn run_purge(&self, spec: &PurgeSpec) -> Result<TaskReport> {
        let leader = self.leader()?;
        let config = leader.table_config(&spec.table)?;
        let mut report = TaskReport {
            task: format!("purge:{}", spec.table),
            segments_processed: 0,
            segments_rewritten: 0,
            records_removed: 0,
        };
        for seg_name in leader.list_segments(&spec.table) {
            let Ok(blob) = leader.download_segment(&spec.table, &seg_name) else {
                continue; // consuming segment without a committed blob yet
            };
            report.segments_processed += 1;
            let segment = pinot_segment::persist::deserialize(&blob)?;
            let col_idx = segment.schema().column_index(&spec.column).ok_or_else(|| {
                PinotError::Schema(format!("purge column {:?} not in schema", spec.column))
            })?;

            // Collect surviving records.
            let mut survivors: Vec<Record> = Vec::new();
            let mut removed = 0u64;
            for doc in 0..segment.num_docs() {
                let row = segment.record(doc);
                let matches = spec
                    .values
                    .iter()
                    .any(|v| row[col_idx].total_cmp(v).is_eq());
                if matches {
                    removed += 1;
                } else {
                    survivors.push(Record::new(row));
                }
            }
            if removed == 0 {
                continue;
            }
            report.records_removed += removed;
            report.segments_rewritten += 1;

            let rebuilt = rebuild_segment(&segment, survivors, &config)?;
            leader.upload_segment(&spec.table, Bytes::from(rebuilt))?;
        }
        Ok(report)
    }

    /// Rebuild every segment with the table's current index configuration.
    pub fn run_reindex(&self, table: &str) -> Result<TaskReport> {
        let leader = self.leader()?;
        let config = leader.table_config(table)?;
        let mut report = TaskReport {
            task: format!("reindex:{table}"),
            segments_processed: 0,
            segments_rewritten: 0,
            records_removed: 0,
        };
        for seg_name in leader.list_segments(table) {
            let Ok(blob) = leader.download_segment(table, &seg_name) else {
                continue;
            };
            report.segments_processed += 1;
            let segment = pinot_segment::persist::deserialize(&blob)?;
            let rows: Vec<Record> = (0..segment.num_docs())
                .map(|d| Record::new(segment.record(d)))
                .collect();
            let rebuilt = rebuild_segment(&segment, rows, &config)?;
            leader.upload_segment(table, Bytes::from(rebuilt))?;
            report.segments_rewritten += 1;
        }
        Ok(report)
    }
}

/// Rebuild a segment (same name/table/partition) from the given rows, with
/// the index settings from the current table config.
fn rebuild_segment(
    original: &pinot_segment::ImmutableSegment,
    rows: Vec<Record>,
    config: &TableConfig,
) -> Result<Vec<u8>> {
    let meta = original.metadata();
    let mut cfg = BuilderConfig::new(meta.segment_name.clone(), meta.table.clone());
    if let Some(sorted) = &config.indexing.sorted_column {
        cfg.sort_columns = vec![sorted.clone()];
    }
    cfg.inverted_columns = config.indexing.inverted_index_columns.clone();
    cfg.partition = meta.partition.clone();
    if let Some((s, e)) = meta.offset_range {
        cfg = cfg.with_offset_range(s, e);
    }
    cfg.created_at_millis = meta.created_at_millis;
    let mut builder = SegmentBuilder::new(original.schema().clone(), cfg)?;
    for r in rows {
        builder.add(r)?;
    }
    Ok(pinot_segment::persist::serialize(&builder.build()?))
}

/// [`MinionTask`] wrapper for purges, so purges can be scheduled through
/// the generic framework.
pub struct PurgeTask(pub PurgeSpec);

impl MinionTask for PurgeTask {
    fn name(&self) -> &str {
        "purge"
    }

    fn run(&self, minion: &Minion) -> Result<TaskReport> {
        minion.run_purge(&self.0)
    }
}

/// [`MinionTask`] wrapper for reindexing.
pub struct ReindexTask(pub String);

impl MinionTask for ReindexTask {
    fn name(&self) -> &str {
        "reindex"
    }

    fn run(&self, minion: &Minion) -> Result<TaskReport> {
        minion.run_reindex(&self.0)
    }
}
