//! pinot-taskpool: the intra-server execution pool (§3.3.4, Figs 5/7).
//!
//! The paper's servers run the per-segment physical plans of one query in
//! parallel across cores and combine partial results before answering the
//! broker. This crate supplies that parallelism as a from-scratch
//! work-stealing pool:
//!
//! * **per-worker deques + a global injector** — external submissions land
//!   in the injector; each worker drains a small batch into its own deque,
//!   pops its deque FIFO, and steals from the *back* of a sibling's deque
//!   when both are empty;
//! * **scoped joins** — [`TaskPool::scope`] lets tasks borrow stack data
//!   (segment lists, result slots) and guarantees every spawned task has
//!   finished before the scope returns, even on panic;
//! * **panic capture and propagation** — a panicking task is caught on the
//!   worker, recorded, and re-thrown from the scope owner's thread, so a
//!   bug in one segment plan cannot take down an unrelated worker;
//! * **cooperative deadline cancellation** — [`Deadline`] carries the
//!   broker's scatter deadline; a queued task whose deadline has already
//!   passed is abandoned without running (counted in
//!   `taskpool.tasks_cancelled`), because nobody is waiting for it;
//! * **deterministic single-thread mode** — `PINOT_TASKPOOL_THREADS=1`
//!   gives one worker and strict FIFO execution, so tests can compare the
//!   parallel path against a deterministic schedule.
//!
//! Waiting scopes *help*: while a scope has pending tasks the waiting
//! thread executes pool work instead of blocking, which keeps nested
//! scopes on the same pool deadlock-free and makes the 1-thread mode run
//! mostly on the caller's own thread.
//!
//! Metrics (when constructed with an [`Obs`] sink): `taskpool.tasks_run`,
//! `taskpool.tasks_stolen`, `taskpool.tasks_cancelled`,
//! `taskpool.task_panics` counters and the `taskpool.queue_depth` gauge.

use parking_lot::Mutex;
use pinot_obs::Obs;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Environment variable overriding the worker count (`1` = deterministic
/// single-thread mode; unset = `available_parallelism`).
pub const THREADS_ENV: &str = "PINOT_TASKPOOL_THREADS";

/// How many extra jobs a worker moves from the injector into its own deque
/// per refill, beyond the one it runs immediately. Small enough that idle
/// siblings still find injector work, large enough that deques see use.
const REFILL_BATCH: usize = 3;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A cooperative cancellation token carrying the broker's scatter deadline
/// (threaded through `RoutedRequest` since PR 2). Queued tasks spawned via
/// [`Scope::spawn_with_deadline`] are abandoned once it expires.
#[derive(Clone, Debug, Default)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// A deadline that never expires.
    pub fn none() -> Deadline {
        Deadline(None)
    }

    /// A deadline at `at`; `None` never expires.
    pub fn at(at: Option<Instant>) -> Deadline {
        Deadline(at)
    }

    pub fn expired(&self) -> bool {
        matches!(self.0, Some(d) if Instant::now() >= d)
    }

    /// Time left, if a deadline is set and not yet passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.0.map(|d| d.saturating_duration_since(Instant::now()))
    }

    pub fn instant(&self) -> Option<Instant> {
        self.0
    }
}

struct WorkerState {
    deque: Mutex<VecDeque<Job>>,
}

struct PoolShared {
    injector: Mutex<VecDeque<Job>>,
    workers: Vec<WorkerState>,
    /// Park/wake coordination for idle workers (std pair: the parking_lot
    /// shim deliberately has no Condvar).
    sleep_lock: StdMutex<()>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    /// Jobs submitted but not yet started (injector + deques).
    queued: AtomicI64,
    tasks_run: AtomicU64,
    tasks_stolen: AtomicU64,
    tasks_cancelled: AtomicU64,
    task_panics: AtomicU64,
    obs: Option<Arc<Obs>>,
}

impl PoolShared {
    fn record_queue_depth(&self) {
        if let Some(obs) = &self.obs {
            obs.metrics
                .gauge_set("taskpool.queue_depth", self.queued.load(Ordering::Relaxed));
        }
    }

    fn push(&self, job: Job) {
        self.injector.lock().push_back(job);
        self.queued.fetch_add(1, Ordering::Relaxed);
        self.record_queue_depth();
        let _guard = self.sleep_lock.lock().unwrap();
        self.wakeup.notify_one();
    }

    /// Enqueue a whole batch at once, dealing job `i` onto worker
    /// `i % threads`'s deque round-robin (the morsel path: one lock per
    /// worker instead of one injector lock per job) and waking every
    /// worker with a single notify.
    fn push_batch(&self, jobs: Vec<Job>) {
        let n = jobs.len();
        let workers = self.workers.len();
        let mut per_worker: Vec<VecDeque<Job>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            per_worker[i % workers].push_back(job);
        }
        for (w, batch) in per_worker.into_iter().enumerate() {
            if !batch.is_empty() {
                self.workers[w].deque.lock().extend(batch);
            }
        }
        self.queued.fetch_add(n as i64, Ordering::Relaxed);
        self.record_queue_depth();
        let _guard = self.sleep_lock.lock().unwrap();
        self.wakeup.notify_all();
    }

    /// Pop work as worker `idx`: own deque first, then an injector refill,
    /// then steal from a sibling's back.
    fn pop_for_worker(&self, idx: usize) -> Option<Job> {
        if let Some(job) = self.workers[idx].deque.lock().pop_front() {
            return Some(job);
        }
        {
            let mut injector = self.injector.lock();
            if let Some(job) = injector.pop_front() {
                let mut local = self.workers[idx].deque.lock();
                for _ in 0..REFILL_BATCH {
                    match injector.pop_front() {
                        Some(extra) => local.push_back(extra),
                        None => break,
                    }
                }
                return Some(job);
            }
        }
        self.steal(idx)
    }

    fn steal(&self, idx: usize) -> Option<Job> {
        let n = self.workers.len();
        for off in 1..n {
            let victim = (idx + off) % n;
            if let Some(job) = self.workers[victim].deque.lock().pop_back() {
                self.tasks_stolen.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &self.obs {
                    obs.metrics.counter_add("taskpool.tasks_stolen", 1);
                }
                return Some(job);
            }
        }
        None
    }

    /// Pop work as an outsider (a thread helping while it waits on a
    /// scope): injector first, then any worker's deque.
    fn pop_any(&self) -> Option<Job> {
        if let Some(job) = self.injector.lock().pop_front() {
            return Some(job);
        }
        for w in &self.workers {
            if let Some(job) = w.deque.lock().pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn run_job(&self, job: Job) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.record_queue_depth();
        job();
    }

    /// Called by each task closure once its outcome (result, panic, or
    /// cancellation) is fully recorded, *before* it signals scope
    /// completion — a scope waiter that wakes on `complete_one` must see
    /// every counter already settled.
    fn note_run(&self) {
        self.tasks_run.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.metrics.counter_add("taskpool.tasks_run", 1);
        }
    }

    fn note_cancelled(&self) {
        self.tasks_cancelled.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.metrics.counter_add("taskpool.tasks_cancelled", 1);
        }
    }

    fn note_panic(&self) {
        self.task_panics.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.metrics.counter_add("taskpool.task_panics", 1);
        }
    }
}

std::thread_local! {
    /// Index of the pool worker running on this thread, `None` on
    /// non-worker threads (including scope owners helping while they
    /// wait). Lets morsel tasks attribute work migration: a task that
    /// runs off its home worker was stolen or helped.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

fn worker_loop(shared: Arc<PoolShared>, idx: usize) {
    WORKER_INDEX.with(|w| w.set(Some(idx)));
    loop {
        if let Some(job) = shared.pop_for_worker(idx) {
            shared.run_job(job);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let guard = shared.sleep_lock.lock().unwrap();
        if shared.queued.load(Ordering::Relaxed) > 0 || shared.shutdown.load(Ordering::SeqCst) {
            continue;
        }
        // Pushes bump `queued` before taking `sleep_lock` to notify, and
        // the re-check above runs under that lock, so a parked worker
        // cannot miss a wakeup; the timeout is only a safety net. It is
        // deliberately long: each expiry is a spurious wakeup, and on a
        // box with fewer cores than pool workers those preempt whatever
        // is actually running — idle workers must cost nothing.
        let _ = shared
            .wakeup
            .wait_timeout(guard, Duration::from_millis(200))
            .unwrap();
    }
}

/// The work-stealing pool. One per server (its cores) and one per broker
/// (its scatter fan-out).
pub struct TaskPool {
    shared: Arc<PoolShared>,
    threads: usize,
    started: AtomicBool,
    start_lock: StdMutex<()>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TaskPool {
    /// Pool with an explicit worker count (≥ 1).
    pub fn with_threads(threads: usize, obs: Option<Arc<Obs>>) -> TaskPool {
        let threads = threads.max(1);
        TaskPool {
            shared: Arc::new(PoolShared {
                injector: Mutex::new(VecDeque::new()),
                workers: (0..threads)
                    .map(|_| WorkerState {
                        deque: Mutex::new(VecDeque::new()),
                    })
                    .collect(),
                sleep_lock: StdMutex::new(()),
                wakeup: Condvar::new(),
                shutdown: AtomicBool::new(false),
                queued: AtomicI64::new(0),
                tasks_run: AtomicU64::new(0),
                tasks_stolen: AtomicU64::new(0),
                tasks_cancelled: AtomicU64::new(0),
                task_panics: AtomicU64::new(0),
                obs,
            }),
            threads,
            started: AtomicBool::new(false),
            start_lock: StdMutex::new(()),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Pool sized from `PINOT_TASKPOOL_THREADS`, falling back to
    /// `available_parallelism`.
    pub fn from_env(obs: Option<Arc<Obs>>) -> TaskPool {
        TaskPool::with_threads(Self::default_threads(), obs)
    }

    /// The worker count [`TaskPool::from_env`] would use.
    pub fn default_threads() -> usize {
        match std::env::var(THREADS_ENV) {
            Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
            Err(_) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The pool-worker index of the calling thread, `None` when called
    /// from outside any pool's workers (e.g. a scope owner helping).
    pub fn current_worker() -> Option<usize> {
        WORKER_INDEX.with(|w| w.get())
    }

    // ---- counters (tests assert on these; obs mirrors them) ----

    pub fn tasks_run(&self) -> u64 {
        self.shared.tasks_run.load(Ordering::Relaxed)
    }

    pub fn tasks_stolen(&self) -> u64 {
        self.shared.tasks_stolen.load(Ordering::Relaxed)
    }

    pub fn tasks_cancelled(&self) -> u64 {
        self.shared.tasks_cancelled.load(Ordering::Relaxed)
    }

    pub fn task_panics(&self) -> u64 {
        self.shared.task_panics.load(Ordering::Relaxed)
    }

    pub fn queue_depth(&self) -> i64 {
        self.shared.queued.load(Ordering::Relaxed)
    }

    /// Workers start lazily on first submission, so pools owned by
    /// components that never execute anything cost no threads.
    fn ensure_workers(&self) {
        if self.started.load(Ordering::SeqCst) {
            return;
        }
        let _guard = self.start_lock.lock().unwrap();
        if self.started.load(Ordering::SeqCst) {
            return;
        }
        let mut handles = self.handles.lock();
        for i in 0..self.threads {
            let shared = Arc::clone(&self.shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("taskpool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn taskpool worker"),
            );
        }
        self.started.store(true, Ordering::SeqCst);
    }

    fn push_job(&self, job: Job) {
        self.ensure_workers();
        self.shared.push(job);
    }

    /// Fire-and-forget submission with panic capture: a panicking task is
    /// swallowed (and counted) instead of unwinding a worker. Used by the
    /// broker's scatter so a reply that arrives after the gather gave up
    /// runs on a pooled worker whose only side effect is a failed channel
    /// send — never an unjoined OS thread.
    pub fn spawn_detached(&self, f: impl FnOnce() + Send + 'static) {
        let shared = Arc::clone(&self.shared);
        self.push_job(Box::new(move || {
            if panic::catch_unwind(AssertUnwindSafe(f)).is_err() {
                shared.note_panic();
            }
            shared.note_run();
        }));
    }

    /// [`spawn_detached`](TaskPool::spawn_detached) with deadline
    /// cancellation: if `deadline` has passed when a worker dequeues the
    /// task, it is abandoned without running (the broker's gather then
    /// observes a channel timeout, exactly as if the server never replied).
    pub fn spawn_detached_with_deadline(
        &self,
        deadline: &Deadline,
        f: impl FnOnce() + Send + 'static,
    ) {
        let shared = Arc::clone(&self.shared);
        let deadline = deadline.clone();
        self.push_job(Box::new(move || {
            if deadline.expired() {
                shared.note_cancelled();
            } else if panic::catch_unwind(AssertUnwindSafe(f)).is_err() {
                shared.note_panic();
            }
            shared.note_run();
        }));
    }

    /// Run `f` with a [`Scope`] whose spawned tasks may borrow anything
    /// that outlives the call. Returns only after every spawned task has
    /// finished; the first task panic (or the closure's own) is re-thrown
    /// here.
    pub fn scope<'scope, R>(&'scope self, f: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::new()),
            _marker: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Settle before propagating anything: tasks may still borrow stack
        // data, so the scope must not unwind past it while they run.
        scope.state.complete_one();
        self.wait_scope(&scope.state);
        if let Some(p) = scope.state.take_panic() {
            panic::resume_unwind(p);
        }
        match result {
            Ok(r) => r,
            Err(p) => panic::resume_unwind(p),
        }
    }

    /// Wait for a scope's tasks, executing pool work while waiting (the
    /// "help" protocol) so nested scopes on one pool cannot deadlock.
    fn wait_scope(&self, state: &ScopeState) {
        loop {
            if state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if let Some(job) = self.shared.pop_any() {
                self.shared.run_job(job);
                continue;
            }
            let guard = state.lock.lock().unwrap();
            if state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            // Short timeout: a job belonging to this scope may appear on a
            // deque we can steal from while its owner is busy elsewhere.
            let _ = state
                .done
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.sleep_lock.lock().unwrap();
            self.shared.wakeup.notify_all();
        }
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

struct ScopeState {
    /// Outstanding tasks + 1 for the scope body itself (so the count can
    /// only reach zero after the body has finished spawning).
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    lock: StdMutex<()>,
    done: Condvar,
}

impl ScopeState {
    fn new() -> ScopeState {
        ScopeState {
            pending: AtomicUsize::new(1),
            panic: Mutex::new(None),
            lock: StdMutex::new(()),
            done: Condvar::new(),
        }
    }

    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.lock.lock().unwrap();
            self.done.notify_all();
        }
    }

    fn set_panic(&self, p: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(p);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().take()
    }
}

/// Spawn handle passed to the closure of [`TaskPool::scope`].
pub struct Scope<'scope> {
    pool: &'scope TaskPool,
    state: Arc<ScopeState>,
    /// Invariant over 'scope, so the borrow checker cannot shrink the
    /// region tasks are allowed to borrow from.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub fn spawn(&self, f: impl FnOnce() + Send + 'scope) {
        self.spawn_with_deadline(&Deadline::none(), f)
    }

    /// Like [`Scope::spawn`], but the task is abandoned (never run, counted
    /// in `taskpool.tasks_cancelled`) if `deadline` has expired by the time
    /// a worker picks it up.
    pub fn spawn_with_deadline(&self, deadline: &Deadline, f: impl FnOnce() + Send + 'scope) {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let shared = Arc::clone(&self.pool.shared);
        let deadline = deadline.clone();
        let task = move || {
            if deadline.expired() {
                shared.note_cancelled();
            } else if let Err(p) = panic::catch_unwind(AssertUnwindSafe(f)) {
                state.set_panic(p);
            }
            shared.note_run();
            state.complete_one();
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(task);
        // SAFETY: the scope's owner blocks in `wait_scope` until `pending`
        // reaches zero, i.e. until this job has run (or been abandoned) and
        // dropped — so the 'scope borrows it captures are live for the
        // job's whole existence, even though the queue slot is 'static.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.push_job(job);
    }

    /// Spawn a homogeneous batch of tasks in one submission: job `i` is
    /// dealt onto the deque of its *home worker* `i % threads` (one lock
    /// per worker, one wakeup for the whole batch) instead of paying an
    /// injector round-trip per job. Used by morsel fan-out, where one
    /// segment scan turns into dozens of small tasks at once; a job
    /// executed off its home worker was stolen or helped
    /// ([`TaskPool::current_worker`] tells the job which happened).
    /// Deadline semantics match [`Scope::spawn_with_deadline`].
    pub fn spawn_batch_with_deadline<F>(&self, deadline: &Deadline, fs: Vec<F>)
    where
        F: FnOnce() + Send + 'scope,
    {
        if fs.is_empty() {
            return;
        }
        self.pool.ensure_workers();
        let mut jobs: Vec<Job> = Vec::with_capacity(fs.len());
        for f in fs {
            self.state.pending.fetch_add(1, Ordering::SeqCst);
            let state = Arc::clone(&self.state);
            let shared = Arc::clone(&self.pool.shared);
            let deadline = deadline.clone();
            let task = move || {
                if deadline.expired() {
                    shared.note_cancelled();
                } else if let Err(p) = panic::catch_unwind(AssertUnwindSafe(f)) {
                    state.set_panic(p);
                }
                shared.note_run();
                state.complete_one();
            };
            let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(task);
            // SAFETY: as in `spawn_with_deadline` — the scope owner blocks
            // in `wait_scope` until `pending` reaches zero, so the 'scope
            // borrows each job captures outlive the job.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(
                    job,
                )
            };
            jobs.push(job);
        }
        self.pool.shared.push_batch(jobs);
    }
}

/// Per-worker accumulation slots for order-independent partials (integer
/// kernel counters, busy-time tallies). Slot `i` belongs to pool worker
/// `i`; one extra trailing slot collects contributions from non-worker
/// threads (scope owners helping while they wait). After the scope joins,
/// [`WorkerSlots::into_slots`] hands the partials back in fixed slot
/// order, so merging them is deterministic no matter which worker ran
/// which task — provided the per-slot merge is commutative/associative,
/// which the morsel proptests pin.
pub struct WorkerSlots<T> {
    slots: Vec<Mutex<T>>,
}

impl<T: Default> WorkerSlots<T> {
    /// Slots for `pool`: one per worker plus one for outside helpers.
    pub fn new(pool: &TaskPool) -> WorkerSlots<T> {
        WorkerSlots {
            slots: (0..pool.threads() + 1)
                .map(|_| Mutex::new(T::default()))
                .collect(),
        }
    }

    /// Run `f` on the calling thread's slot (the helper slot when the
    /// caller is not a pool worker).
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let idx = TaskPool::current_worker()
            .map(|w| w.min(self.slots.len() - 2))
            .unwrap_or(self.slots.len() - 1);
        f(&mut self.slots[idx].lock())
    }

    /// The accumulated partials, in fixed slot order (workers 0..n, then
    /// the helper slot).
    pub fn into_slots(self) -> Vec<T> {
        self.slots.into_iter().map(|m| m.into_inner()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn scoped_tasks_borrow_and_join() {
        let pool = TaskPool::with_threads(4, None);
        let data: Vec<u64> = (0..100).collect();
        let sums: Vec<Mutex<u64>> = (0..10).map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            for (i, chunk) in data.chunks(10).enumerate() {
                let slot = &sums[i];
                s.spawn(move || {
                    *slot.lock() = chunk.iter().sum();
                });
            }
        });
        let total: u64 = sums.iter().map(|m| *m.lock()).sum();
        assert_eq!(total, 4950);
        assert_eq!(pool.tasks_run(), 10);
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn single_thread_mode_is_fifo() {
        let pool = TaskPool::with_threads(1, None);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..50 {
                let order = &order;
                s.spawn(move || order.lock().push(i));
            }
        });
        // One worker + FIFO queues; the helping waiter also pops FIFO.
        assert_eq!(*order.lock(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn panic_propagates_after_all_tasks_finish() {
        let pool = TaskPool::with_threads(2, None);
        let finished = AtomicU32::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..8 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 3 {
                            panic!("boom in task {i}");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "task panic must reach the scope owner");
        // Every non-panicking task still ran to completion before unwind.
        assert_eq!(finished.load(Ordering::SeqCst), 7);
        // The pool survives and runs new work.
        let ok = Mutex::new(false);
        pool.scope(|s| {
            let ok = &ok;
            s.spawn(move || *ok.lock() = true);
        });
        assert!(*ok.lock());
    }

    #[test]
    fn expired_deadline_cancels_queued_tasks() {
        let pool = TaskPool::with_threads(1, None);
        let ran = AtomicU32::new(0);
        let deadline = Deadline::at(Some(Instant::now() - Duration::from_millis(1)));
        pool.scope(|s| {
            for _ in 0..5 {
                let ran = &ran;
                s.spawn_with_deadline(&deadline, move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(pool.tasks_cancelled(), 5);

        // A live deadline lets everything through.
        let live = Deadline::at(Some(Instant::now() + Duration::from_secs(60)));
        pool.scope(|s| {
            for _ in 0..5 {
                let ran = &ran;
                s.spawn_with_deadline(&live, move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(ran.load(Ordering::SeqCst), 5);
        assert_eq!(pool.tasks_cancelled(), 5);
    }

    #[test]
    fn nested_scopes_on_one_pool_do_not_deadlock() {
        let pool = TaskPool::with_threads(1, None);
        let total = AtomicU32::new(0);
        pool.scope(|outer| {
            for _ in 0..3 {
                let pool = &pool;
                let total = &total;
                outer.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn detached_tasks_capture_panics() {
        let pool = TaskPool::with_threads(2, None);
        let done = Arc::new(AtomicU32::new(0));
        pool.spawn_detached(|| panic!("detached boom"));
        let d = Arc::clone(&done);
        pool.spawn_detached(move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        let start = Instant::now();
        while (pool.tasks_run() < 2 || done.load(Ordering::SeqCst) == 0)
            && start.elapsed() < Duration::from_secs(5)
        {
            std::thread::yield_now();
        }
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(pool.task_panics(), 1);
    }

    #[test]
    fn work_is_stolen_under_imbalance() {
        // Many tasks, several workers: the injector refill batches ensure
        // deques fill, and idle workers steal from busy ones.
        let pool = TaskPool::with_threads(4, None);
        let count = AtomicU32::new(0);
        pool.scope(|s| {
            for _ in 0..256 {
                let count = &count;
                s.spawn(move || {
                    count.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_micros(50));
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 256);
        assert_eq!(pool.tasks_run(), 256);
    }

    #[test]
    fn env_sizing_defaults() {
        // Not asserting on the env var itself (tests run in parallel);
        // just that the fallback is sane.
        assert!(TaskPool::default_threads() >= 1);
        let pool = TaskPool::from_env(None);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn obs_metrics_are_recorded() {
        let obs = Obs::shared();
        let pool = TaskPool::with_threads(2, Some(Arc::clone(&obs)));
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {});
            }
        });
        let expired = Deadline::at(Some(Instant::now() - Duration::from_millis(1)));
        pool.scope(|s| s.spawn_with_deadline(&expired, || {}));
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("taskpool.tasks_run"), pool.tasks_run());
        assert_eq!(snap.counter("taskpool.tasks_cancelled"), 1);
        assert_eq!(snap.gauge("taskpool.queue_depth"), Some(0));
    }

    #[test]
    fn batch_spawn_runs_every_job_and_joins() {
        let pool = TaskPool::with_threads(3, None);
        let hits: Vec<Mutex<u64>> = (0..64).map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            let jobs: Vec<_> = hits.iter().map(|slot| move || *slot.lock() += 1).collect();
            s.spawn_batch_with_deadline(&Deadline::none(), jobs);
        });
        assert!(hits.iter().all(|h| *h.lock() == 1));
        assert_eq!(pool.tasks_run(), 64);
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn batch_spawn_respects_expired_deadline() {
        let pool = TaskPool::with_threads(2, None);
        let ran = AtomicU32::new(0);
        let expired = Deadline::at(Some(Instant::now() - Duration::from_millis(1)));
        pool.scope(|s| {
            let jobs: Vec<_> = (0..8)
                .map(|_| {
                    let ran = &ran;
                    move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .collect();
            s.spawn_batch_with_deadline(&expired, jobs);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(pool.tasks_cancelled(), 8);
    }

    #[test]
    fn current_worker_is_set_on_workers_only() {
        assert_eq!(TaskPool::current_worker(), None);
        let pool = TaskPool::with_threads(2, None);
        let seen = Mutex::new(Vec::new());
        pool.scope(|s| {
            for _ in 0..32 {
                let seen = &seen;
                s.spawn(move || seen.lock().push(TaskPool::current_worker()));
            }
        });
        // Every observed index fits the pool; the scope owner helping
        // reports `None`.
        for w in seen.lock().iter().flatten() {
            assert!(*w < 2);
        }
    }

    #[test]
    fn worker_slots_accumulate_in_fixed_order() {
        let pool = TaskPool::with_threads(4, None);
        let slots: WorkerSlots<u64> = WorkerSlots::new(&pool);
        pool.scope(|s| {
            let jobs: Vec<_> = (0..100u64)
                .map(|i| {
                    let slots = &slots;
                    move || slots.with(|t| *t += i)
                })
                .collect();
            s.spawn_batch_with_deadline(&Deadline::none(), jobs);
        });
        let parts = slots.into_slots();
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().sum::<u64>(), 4950);
    }
}
