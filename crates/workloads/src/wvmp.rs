//! "Who viewed my profile" dataset (Figure 15).
//!
//! Every query filters on `viewee_id` — the member whose profile views are
//! being summarized — which is why Pinot physically reorders records by
//! that column (§4.2): any query touches one contiguous range. Queries are
//! simple aggregations (sum of views, distinct viewers) with a few facets
//! (country, industry, seniority). Popularity is long-tailed.

use crate::util::{pick, Zipf};
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use rand::Rng;

pub const TABLE: &str = "wvmp";

const COUNTRIES: [&str; 10] = ["us", "in", "br", "uk", "de", "fr", "ca", "cn", "jp", "au"];
const INDUSTRIES: usize = 30;
const SENIORITIES: [&str; 6] = ["entry", "senior", "manager", "director", "vp", "cxo"];
pub const DAYS: i64 = 14;

pub fn schema() -> Schema {
    Schema::new(
        TABLE,
        vec![
            FieldSpec::dimension("viewee_id", DataType::Long),
            FieldSpec::dimension("viewer_country", DataType::String),
            FieldSpec::dimension("viewer_industry", DataType::String),
            FieldSpec::dimension("viewer_seniority", DataType::String),
            FieldSpec::metric("views", DataType::Long),
            FieldSpec::metric("viewer_hash", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

/// Row generator: `num_members` distinct viewees with zipf popularity.
pub struct WvmpGen {
    zipf: Zipf,
    num_members: usize,
    base_day: i64,
}

impl WvmpGen {
    pub fn new(num_members: usize, base_day: i64) -> WvmpGen {
        WvmpGen {
            zipf: Zipf::new(num_members, 1.05),
            num_members,
            base_day,
        }
    }

    pub fn num_members(&self) -> usize {
        self.num_members
    }

    pub fn rows(&self, n: usize, rng: &mut impl Rng) -> Vec<Record> {
        (0..n)
            .map(|_| {
                let viewee = self.zipf.sample(rng) as i64;
                Record::new(vec![
                    Value::Long(viewee),
                    Value::String(pick(rng, &COUNTRIES).to_string()),
                    Value::String(format!("industry_{:02}", rng.gen_range(0..INDUSTRIES))),
                    Value::String(pick(rng, &SENIORITIES).to_string()),
                    Value::Long(1),
                    Value::Long(rng.gen_range(0..1_000_000)),
                    Value::Long(self.base_day + rng.gen_range(0..DAYS)),
                ])
            })
            .collect()
    }

    /// WVMP queries always key on a viewee; viewees are queried with the
    /// same popularity skew as their data (active members check more).
    pub fn query(&self, rng: &mut impl Rng) -> String {
        let viewee = self.zipf.sample(rng) as i64;
        match rng.gen_range(0..4) {
            0 => format!("SELECT SUM(views) FROM {TABLE} WHERE viewee_id = {viewee}"),
            1 => format!(
                "SELECT SUM(views) FROM {TABLE} WHERE viewee_id = {viewee} \
                 GROUP BY viewer_country TOP 10"
            ),
            2 => format!(
                "SELECT SUM(views), COUNT(*) FROM {TABLE} WHERE viewee_id = {viewee} \
                 GROUP BY viewer_seniority TOP 10"
            ),
            _ => format!(
                "SELECT DISTINCTCOUNT(viewer_hash) FROM {TABLE} WHERE viewee_id = {viewee} \
                 AND day >= {}",
                self.base_day + DAYS / 2
            ),
        }
    }

    pub fn queries(&self, n: usize, rng: &mut impl Rng) -> Vec<String> {
        (0..n).map(|_| self.query(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rows_match_schema_and_queries_key_on_viewee() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = WvmpGen::new(1_000, 17_000);
        let s = schema();
        for r in gen.rows(300, &mut rng) {
            r.normalize(&s).unwrap();
        }
        for q in gen.queries(200, &mut rng) {
            assert!(q.contains("viewee_id ="), "{q}");
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let gen = WvmpGen::new(10_000, 17_000);
        let rows = gen.rows(20_000, &mut rng);
        let head = rows
            .iter()
            .filter(|r| r.values()[0].as_i64().unwrap() < 100)
            .count();
        assert!(head > 2_000, "head rows: {head}");
    }
}
