//! "Share analytics" dataset (Figure 14).
//!
//! End-user analytics on who viewed published content: simple aggregations
//! (sum of clicks/views, distinct count of viewers) with a few facets such
//! as region, seniority or industry, always for one piece of shared
//! content. Pinot sorts physically by the shared item identifier — the
//! paper attributes most of its advantage over Druid on this dataset to
//! that ordering.

use crate::util::{pick, Zipf};
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use rand::Rng;

pub const TABLE: &str = "shares";

const REGIONS: [&str; 8] = [
    "na-east", "na-west", "emea", "apac", "latam", "india", "anz", "mena",
];
const SENIORITIES: [&str; 6] = ["entry", "senior", "manager", "director", "vp", "cxo"];
const INDUSTRIES: usize = 25;
pub const DAYS: i64 = 21;

pub fn schema() -> Schema {
    Schema::new(
        TABLE,
        vec![
            FieldSpec::dimension("item_id", DataType::Long),
            FieldSpec::dimension("region", DataType::String),
            FieldSpec::dimension("seniority", DataType::String),
            FieldSpec::dimension("industry", DataType::String),
            FieldSpec::metric("views", DataType::Long),
            FieldSpec::metric("clicks", DataType::Long),
            FieldSpec::metric("viewer_hash", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

pub struct ShareGen {
    zipf: Zipf,
    base_day: i64,
}

impl ShareGen {
    pub fn new(num_items: usize, base_day: i64) -> ShareGen {
        ShareGen {
            zipf: Zipf::new(num_items, 1.1),
            base_day,
        }
    }

    pub fn rows(&self, n: usize, rng: &mut impl Rng) -> Vec<Record> {
        (0..n)
            .map(|_| {
                Record::new(vec![
                    Value::Long(self.zipf.sample(rng) as i64),
                    Value::String(pick(rng, &REGIONS).to_string()),
                    Value::String(pick(rng, &SENIORITIES).to_string()),
                    Value::String(format!("industry_{:02}", rng.gen_range(0..INDUSTRIES))),
                    Value::Long(1),
                    Value::Long(if rng.gen_bool(0.1) { 1 } else { 0 }),
                    Value::Long(rng.gen_range(0..500_000)),
                    Value::Long(self.base_day + rng.gen_range(0..DAYS)),
                ])
            })
            .collect()
    }

    pub fn query(&self, rng: &mut impl Rng) -> String {
        let item = self.zipf.sample(rng) as i64;
        match rng.gen_range(0..4) {
            0 => format!("SELECT SUM(views), SUM(clicks) FROM {TABLE} WHERE item_id = {item}"),
            1 => format!(
                "SELECT SUM(views) FROM {TABLE} WHERE item_id = {item} GROUP BY region TOP 10"
            ),
            2 => format!(
                "SELECT SUM(views) FROM {TABLE} WHERE item_id = {item} \
                 GROUP BY industry TOP 10"
            ),
            _ => format!(
                "SELECT DISTINCTCOUNT(viewer_hash) FROM {TABLE} WHERE item_id = {item} \
                 AND seniority = '{}'",
                pick(rng, &SENIORITIES)
            ),
        }
    }

    pub fn queries(&self, n: usize, rng: &mut impl Rng) -> Vec<String> {
        (0..n).map(|_| self.query(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rows_match_schema_and_queries_key_on_item() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = ShareGen::new(5_000, 17_000);
        let s = schema();
        for r in gen.rows(200, &mut rng) {
            r.normalize(&s).unwrap();
        }
        for q in gen.queries(100, &mut rng) {
            assert!(q.contains("item_id ="), "{q}");
        }
    }
}
