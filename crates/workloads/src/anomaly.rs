//! Anomaly-detection / ad hoc reporting dataset (Figures 11–13).
//!
//! The paper's first scenario: "ad hoc reporting and anomaly detection on
//! multidimensional key business metrics". The query set mixes
//! automatically generated monitoring queries (fixed shapes, high rate)
//! with ad hoc root-cause drill-downs (variable predicates and groupings).
//! Queries aggregate metrics with a variable number of filtering predicates
//! and grouping clauses — exactly the shape star-trees accelerate.

use crate::util::pick;
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use rand::Rng;

pub const TABLE: &str = "anomaly";

const METRIC_NAMES: usize = 40;
const DATACENTERS: [&str; 4] = ["dc-east", "dc-west", "dc-eu", "dc-ap"];
const FABRICS: usize = 8;
const COUNTRIES: [&str; 12] = [
    "us", "de", "in", "br", "jp", "uk", "fr", "ca", "au", "mx", "es", "it",
];
const PLATFORMS: [&str; 5] = ["web", "ios", "android", "api", "email"];
pub const DAYS: i64 = 30;

pub fn schema() -> Schema {
    Schema::new(
        TABLE,
        vec![
            FieldSpec::dimension("metric_name", DataType::String),
            FieldSpec::dimension("datacenter", DataType::String),
            FieldSpec::dimension("fabric", DataType::String),
            FieldSpec::dimension("country", DataType::String),
            FieldSpec::dimension("platform", DataType::String),
            FieldSpec::metric("value", DataType::Double),
            FieldSpec::metric("events", DataType::Long),
            FieldSpec::time("day", DataType::Long, TimeUnit::Days),
        ],
    )
    .unwrap()
}

/// Generate `n` rows starting at `base_day`.
///
/// Business metrics are *series*: the same (metric, datacenter, fabric,
/// country, platform) combination reports many observations over time.
/// Rows therefore sample from a bounded pool of series (≈ n/200 of them)
/// rather than drawing every dimension independently — this is what gives
/// preaggregation its leverage (Figure 13 plots exactly that ratio).
pub fn rows(n: usize, base_day: i64, rng: &mut impl Rng) -> Vec<Record> {
    let num_series = (n / 200).clamp(1, 5_000);
    let series: Vec<(String, String, String, String, String)> = (0..num_series)
        .map(|_| {
            (
                format!("metric_{:02}", rng.gen_range(0..METRIC_NAMES)),
                pick(rng, &DATACENTERS).to_string(),
                format!("fabric_{}", rng.gen_range(0..FABRICS)),
                pick(rng, &COUNTRIES).to_string(),
                pick(rng, &PLATFORMS).to_string(),
            )
        })
        .collect();
    (0..n)
        .map(|_| {
            let s = pick(rng, &series);
            Record::new(vec![
                Value::String(s.0.clone()),
                Value::String(s.1.clone()),
                Value::String(s.2.clone()),
                Value::String(s.3.clone()),
                Value::String(s.4.clone()),
                Value::Double(rng.gen_range(0.0..1_000.0)),
                Value::Long(rng.gen_range(1..100)),
                Value::Long(base_day + rng.gen_range(0..DAYS)),
            ])
        })
        .collect()
}

/// One query from the production-like mix: ~70% automated monitoring
/// (metric over time with one or two fixed filters), ~30% ad hoc
/// drill-downs (more predicates, group-bys, OR shapes).
pub fn query(base_day: i64, rng: &mut impl Rng) -> String {
    let metric = format!("metric_{:02}", rng.gen_range(0..METRIC_NAMES));
    let day_lo = base_day + rng.gen_range(0..DAYS / 2);
    if rng.gen_bool(0.7) {
        // Monitoring: total for one metric since a day, optionally split by
        // one dimension.
        match rng.gen_range(0..3) {
            0 => format!(
                "SELECT SUM(value) FROM {TABLE} WHERE metric_name = '{metric}' AND day >= {day_lo}"
            ),
            1 => format!(
                "SELECT SUM(value), COUNT(*) FROM {TABLE} WHERE metric_name = '{metric}' \
                 AND datacenter = '{}' AND day >= {day_lo}",
                pick(rng, &DATACENTERS)
            ),
            _ => format!(
                "SELECT SUM(value) FROM {TABLE} WHERE metric_name = '{metric}' \
                 AND day >= {day_lo} GROUP BY datacenter TOP 10"
            ),
        }
    } else {
        // Ad hoc drill-down during root-cause analysis.
        match rng.gen_range(0..4) {
            0 => format!(
                "SELECT SUM(value) FROM {TABLE} WHERE metric_name = '{metric}' \
                 AND country = '{}' AND platform = '{}' AND day >= {day_lo} \
                 GROUP BY fabric TOP 20",
                pick(rng, &COUNTRIES),
                pick(rng, &PLATFORMS)
            ),
            1 => format!(
                "SELECT SUM(events) FROM {TABLE} WHERE metric_name = '{metric}' \
                 AND (datacenter = '{}' OR datacenter = '{}') AND day >= {day_lo} \
                 GROUP BY country TOP 20",
                pick(rng, &DATACENTERS),
                pick(rng, &DATACENTERS)
            ),
            2 => format!(
                "SELECT SUM(value), MAX(value) FROM {TABLE} WHERE country IN ('{}', '{}') \
                 AND day BETWEEN {day_lo} AND {} GROUP BY platform TOP 10",
                pick(rng, &COUNTRIES),
                pick(rng, &COUNTRIES),
                day_lo + 7
            ),
            _ => format!(
                "SELECT COUNT(*) FROM {TABLE} WHERE platform = '{}' AND fabric = 'fabric_{}' \
                 AND day >= {day_lo} GROUP BY metric_name TOP 30",
                pick(rng, &PLATFORMS),
                rng.gen_range(0..FABRICS)
            ),
        }
    }
}

/// A sampled query set with `n` entries.
pub fn queries(n: usize, base_day: i64, rng: &mut impl Rng) -> Vec<String> {
    (0..n).map(|_| query(base_day, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rows_match_schema() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = schema();
        for r in rows(200, 17_000, &mut rng) {
            r.normalize(&s).unwrap();
        }
    }

    #[test]
    fn queries_parse() {
        let mut rng = StdRng::seed_from_u64(2);
        for q in queries(500, 17_000, &mut rng) {
            pinot_pql_parse_check(&q);
        }
    }

    fn pinot_pql_parse_check(q: &str) {
        // The workloads crate doesn't depend on the parser; a lightweight
        // sanity check suffices here (bench/tests parse for real).
        assert!(q.starts_with("SELECT"), "{q}");
        assert!(q.contains(TABLE), "{q}");
    }

    #[test]
    fn query_set_is_diverse() {
        let mut rng = StdRng::seed_from_u64(3);
        let qs = queries(1000, 17_000, &mut rng);
        let distinct: std::collections::HashSet<&String> = qs.iter().collect();
        assert!(distinct.len() > 500, "only {} distinct", distinct.len());
    }
}
