//! Sampling utilities shared by the workload generators.

use rand::Rng;

/// Zipf-distributed sampler over `0..n` with exponent `s`.
///
/// Web entity popularity (profiles viewed, items shared) follows long-tail
/// distributions; the paper's iceberg-query discussion (§4.3) leans on
/// exactly this property. Implemented by inverse-CDF over precomputed
/// cumulative weights — O(log n) per sample.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one element");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Sample an index in `0..n`; index 0 is the most popular.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Pick one element of a slice uniformly.
pub fn pick<'a, T>(rng: &mut impl Rng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_toward_head() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0usize;
        let samples = 20_000;
        for _ in 0..samples {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-1% of ids should take far more than 1% of samples.
        assert!(
            head as f64 / samples as f64 > 0.2,
            "head share {}",
            head as f64 / samples as f64
        );
    }

    #[test]
    fn zipf_covers_range() {
        let z = Zipf::new(10, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..5_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn zipf_samples_in_bounds() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
