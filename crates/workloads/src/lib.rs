//! Synthetic generators for the paper's evaluation workloads (§6).
//!
//! The paper's datasets and query sets came from LinkedIn production
//! systems; they are not available, so each module here generates a
//! synthetic equivalent matched to the *described characteristics* of its
//! scenario — cardinalities, skew, filter shapes, and query mixes — so the
//! relative behaviour of the indexing techniques (who wins, by roughly what
//! factor, where crossovers fall) is preserved:
//!
//! * [`anomaly`] — ad hoc reporting and anomaly detection on
//!   multidimensional business metrics: few low-cardinality dimensions,
//!   automated monitoring queries plus ad hoc drill-downs (Figures 11–13);
//! * [`share_analytics`] — content-share analytics: every query keys on a
//!   shared-item id with a few facets (Figure 14);
//! * [`wvmp`] — "Who viewed my profile": every query filters on
//!   `viewee_id`, the column Pinot physically sorts by (Figure 15);
//! * [`impressions`] — impression discounting for feed personalization:
//!   very high rates of per-member point aggregations (Figure 16).
//!
//! Query sets are sampled with tens of thousands of distinct queries, as in
//! the paper's evaluation setup.

pub mod anomaly;
pub mod impressions;
pub mod share_analytics;
pub mod util;
pub mod wvmp;

pub use util::Zipf;
