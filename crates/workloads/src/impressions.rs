//! Impression-discounting dataset (Figure 16).
//!
//! Feed personalization tracks what each member has already seen so that
//! ignored items rank lower. Every news-feed view issues several queries
//! fetching the member's seen items, making this the highest-QPS,
//! lowest-complexity workload in the paper — and the one where
//! partition-aware routing matters most: every query carries a
//! `member_id = X` filter, so a partitioned table lets the broker touch a
//! single server instead of fanning out.

use crate::util::Zipf;
use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
use rand::Rng;

pub const TABLE: &str = "impressions";

const ACTIONS: [&str; 4] = ["impression", "skip", "click", "hide"];
pub const DAYS: i64 = 7;

pub fn schema() -> Schema {
    Schema::new(
        TABLE,
        vec![
            FieldSpec::dimension("member_id", DataType::Long),
            FieldSpec::dimension("item_id", DataType::Long),
            FieldSpec::dimension("action", DataType::String),
            FieldSpec::metric("cnt", DataType::Long),
            FieldSpec::time("hour", DataType::Long, TimeUnit::Hours),
        ],
    )
    .unwrap()
}

pub struct ImpressionGen {
    members: Zipf,
    num_items: usize,
    base_hour: i64,
}

impl ImpressionGen {
    pub fn new(num_members: usize, num_items: usize, base_hour: i64) -> ImpressionGen {
        ImpressionGen {
            members: Zipf::new(num_members, 0.9),
            num_items,
            base_hour,
        }
    }

    pub fn rows(&self, n: usize, rng: &mut impl Rng) -> Vec<Record> {
        (0..n).map(|_| self.row(rng)).collect()
    }

    /// One feed event (also used for realtime production).
    pub fn row(&self, rng: &mut impl Rng) -> Record {
        let action = match rng.gen_range(0..10) {
            0 => "click",
            1 => "hide",
            2..=4 => "skip",
            _ => "impression",
        };
        debug_assert!(ACTIONS.contains(&action));
        Record::new(vec![
            Value::Long(self.members.sample(rng) as i64),
            Value::Long(rng.gen_range(0..self.num_items) as i64),
            Value::String(action.to_string()),
            Value::Long(1),
            Value::Long(self.base_hour + rng.gen_range(0..DAYS * 24)),
        ])
    }

    /// Member id for partition-keyed realtime production.
    pub fn member_of(record: &Record) -> Value {
        record.values()[0].clone()
    }

    /// Feed-view queries: what has this member already seen?
    pub fn query(&self, rng: &mut impl Rng) -> String {
        let member = self.members.sample(rng) as i64;
        match rng.gen_range(0..3) {
            0 => format!(
                "SELECT SUM(cnt) FROM {TABLE} WHERE member_id = {member} \
                 GROUP BY item_id TOP 50"
            ),
            1 => format!(
                "SELECT SUM(cnt) FROM {TABLE} WHERE member_id = {member} \
                 AND action = 'impression' GROUP BY item_id TOP 50"
            ),
            _ => format!(
                "SELECT COUNT(*) FROM {TABLE} WHERE member_id = {member} \
                 AND hour >= {}",
                self.base_hour + 24
            ),
        }
    }

    pub fn queries(&self, n: usize, rng: &mut impl Rng) -> Vec<String> {
        (0..n).map(|_| self.query(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rows_match_schema_and_queries_key_on_member() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = ImpressionGen::new(10_000, 1_000, 420_000);
        let s = schema();
        for r in gen.rows(300, &mut rng) {
            r.normalize(&s).unwrap();
        }
        for q in gen.queries(100, &mut rng) {
            assert!(q.contains("member_id ="), "{q}");
        }
    }

    #[test]
    fn action_mix_is_mostly_impressions() {
        let mut rng = StdRng::seed_from_u64(2);
        let gen = ImpressionGen::new(100, 100, 0);
        let rows = gen.rows(5_000, &mut rng);
        let impressions = rows
            .iter()
            .filter(|r| r.values()[2].as_str() == Some("impression"))
            .count();
        assert!(impressions > 2_000);
    }
}
