//! Star-tree index (§4.3 of the paper; star-cubing, Xin et al.).
//!
//! A star-tree is a pruned hierarchy of preaggregated records. Dimensions
//! are arranged in a *split order*; each tree level splits the records of
//! its parent node by the next dimension's value, and additionally creates a
//! **star node** that aggregates the whole level (the "all values"
//! branch). Splitting stops at `max_leaf_records`, bounding work per query.
//!
//! Queries whose filters and group-bys touch only tree dimensions, and whose
//! aggregations are SUM/COUNT/MIN/MAX/AVG over tree metrics, can be answered
//! from preaggregated records: navigating per-predicate branches (Figure 9)
//! or multiple branches for OR predicates (Figure 10), and the star branch
//! where a dimension is unconstrained. `DISTINCTCOUNT` and friends cannot
//! use the tree — preaggregation loses the original rows — matching the
//! paper's discussion of lost resolution.
//!
//! The tree is built per segment, in the segment's own dictionary-id space,
//! so predicate translation is a dictionary lookup.

mod agg;
mod build;
mod tree;

pub use agg::AggValues;
pub use build::build_star_tree;
pub use tree::{DimFilter, StarTree, StarTreeResult, STAR};
