//! Preaggregated metric values carried by star-tree records and nodes.

/// Aggregates for a fixed set of metrics: per metric SUM/MIN/MAX plus a
/// shared raw-record count. These suffice for the aggregation functions the
/// tree serves (SUM, COUNT, MIN, MAX, AVG = SUM/COUNT).
#[derive(Debug, Clone, PartialEq)]
pub struct AggValues {
    /// Number of raw (unaggregated) records this aggregate represents.
    pub count: u64,
    pub sums: Vec<f64>,
    pub mins: Vec<f64>,
    pub maxs: Vec<f64>,
}

impl AggValues {
    /// Identity element for `num_metrics` metrics.
    pub fn empty(num_metrics: usize) -> AggValues {
        AggValues {
            count: 0,
            sums: vec![0.0; num_metrics],
            mins: vec![f64::INFINITY; num_metrics],
            maxs: vec![f64::NEG_INFINITY; num_metrics],
        }
    }

    /// Aggregate of a single raw record.
    pub fn from_row(metrics: &[f64]) -> AggValues {
        AggValues {
            count: 1,
            sums: metrics.to_vec(),
            mins: metrics.to_vec(),
            maxs: metrics.to_vec(),
        }
    }

    /// Merge another aggregate into this one.
    pub fn merge(&mut self, other: &AggValues) {
        debug_assert_eq!(self.sums.len(), other.sums.len());
        self.count += other.count;
        for i in 0..self.sums.len() {
            self.sums[i] += other.sums[i];
            self.mins[i] = self.mins[i].min(other.mins[i]);
            self.maxs[i] = self.maxs[i].max(other.maxs[i]);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Average of one metric; `None` when empty.
    pub fn avg(&self, metric: usize) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sums[metric] / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_merge() {
        let mut acc = AggValues::empty(2);
        assert!(acc.is_empty());
        acc.merge(&AggValues::from_row(&[3.0, -1.0]));
        acc.merge(&AggValues::from_row(&[7.0, 5.0]));
        assert_eq!(acc.count, 2);
        assert_eq!(acc.sums, vec![10.0, 4.0]);
        assert_eq!(acc.mins, vec![3.0, -1.0]);
        assert_eq!(acc.maxs, vec![7.0, 5.0]);
        assert_eq!(acc.avg(0), Some(5.0));
    }

    #[test]
    fn merge_with_identity_is_noop() {
        let mut a = AggValues::from_row(&[2.0]);
        let before = a.clone();
        a.merge(&AggValues::empty(1));
        assert_eq!(a, before);
        assert_eq!(AggValues::empty(1).avg(0), None);
    }

    #[test]
    fn merge_is_associative_on_sums_and_count() {
        let rows = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]];
        let mut left = AggValues::empty(2);
        for r in &rows {
            left.merge(&AggValues::from_row(r));
        }
        let mut ab = AggValues::from_row(&rows[0]);
        ab.merge(&AggValues::from_row(&rows[1]));
        let mut right = AggValues::empty(2);
        right.merge(&ab);
        right.merge(&AggValues::from_row(&rows[2]));
        assert_eq!(left, right);
    }
}
