//! Star-tree structure and traversal.

use crate::agg::AggValues;
use pinot_segment::DictId;
use std::collections::HashMap;

/// Sentinel dictionary id for star ("all values") positions.
pub const STAR: DictId = DictId::MAX;

/// One preaggregated star-tree record: dimension dict ids (possibly STAR)
/// plus aggregated metrics.
#[derive(Debug, Clone)]
pub(crate) struct StarRecord {
    pub dims: Vec<DictId>,
    pub agg: AggValues,
}

pub(crate) struct Node {
    /// Dimension level this node's *children* split on.
    pub level: usize,
    /// Aggregate over the node's entire subtree.
    pub agg: AggValues,
    /// Concrete children keyed by dict id, sorted by id.
    pub children: Vec<(DictId, usize)>,
    /// Star child (absent for leaves and skip-star dimensions).
    pub star_child: Option<usize>,
    /// For leaves: record range `[start, end)` in the flat record table.
    pub leaf_range: Option<(u32, u32)>,
}

/// Per-dimension constraint during traversal, aligned to the tree's split
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimFilter {
    /// No constraint on this dimension.
    Any,
    /// Dimension must be one of these dict ids (sorted). Equality is a
    /// one-element set; OR / IN predicates are larger sets (Figure 10).
    In(Vec<DictId>),
}

impl DimFilter {
    fn matches(&self, id: DictId) -> bool {
        match self {
            DimFilter::Any => true,
            DimFilter::In(ids) => ids.binary_search(&id).is_ok(),
        }
    }
}

/// Result of a star-tree execution.
#[derive(Debug, Clone)]
pub struct StarTreeResult {
    /// One entry per group; for ungrouped queries a single entry with an
    /// empty key. Keys are dict ids aligned to the requested group dims.
    pub groups: Vec<(Vec<DictId>, AggValues)>,
    /// Preaggregated records/nodes examined (the numerator of Figure 13).
    pub preagg_docs_scanned: u64,
    /// Raw records represented by the contributions (the denominator of
    /// Figure 13 — what a raw scan of the same filter would have touched).
    pub raw_docs_matched: u64,
}

/// An immutable star-tree for one segment.
pub struct StarTree {
    pub(crate) dimensions: Vec<String>,
    pub(crate) metrics: Vec<String>,
    pub(crate) records: Vec<StarRecord>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: usize,
    pub(crate) max_leaf_records: usize,
}

impl StarTree {
    /// Split-order dimension names.
    pub fn dimensions(&self) -> &[String] {
        &self.dimensions
    }

    /// Preaggregated metric names.
    pub fn metrics(&self) -> &[String] {
        &self.metrics
    }

    pub fn dimension_index(&self, name: &str) -> Option<usize> {
        self.dimensions.iter().position(|d| d == name)
    }

    pub fn metric_index(&self, name: &str) -> Option<usize> {
        self.metrics.iter().position(|m| m == name)
    }

    /// Total preaggregated records stored.
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn max_leaf_records(&self) -> usize {
        self.max_leaf_records
    }

    /// Execute an aggregation over the tree.
    ///
    /// * `filters` — one [`DimFilter`] per tree dimension (same order).
    /// * `group_dims` — indexes of tree dimensions to group by.
    ///
    /// Returns per-group aggregates (a single empty-key group when
    /// `group_dims` is empty) plus scan accounting.
    pub fn execute(&self, filters: &[DimFilter], group_dims: &[usize]) -> StarTreeResult {
        assert_eq!(
            filters.len(),
            self.dimensions.len(),
            "one filter per tree dimension"
        );
        let mut groups: HashMap<Vec<DictId>, AggValues> = HashMap::new();
        let mut scanned = 0u64;
        let mut path = vec![STAR; self.dimensions.len()];
        self.visit(
            self.root,
            filters,
            group_dims,
            &mut path,
            &mut groups,
            &mut scanned,
        );
        let raw = groups.values().map(|a| a.count).sum();
        let mut groups: Vec<(Vec<DictId>, AggValues)> = groups.into_iter().collect();
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        StarTreeResult {
            groups,
            preagg_docs_scanned: scanned,
            raw_docs_matched: raw,
        }
    }

    fn visit(
        &self,
        node_id: usize,
        filters: &[DimFilter],
        group_dims: &[usize],
        path: &mut Vec<DictId>,
        groups: &mut HashMap<Vec<DictId>, AggValues>,
        scanned: &mut u64,
    ) {
        let node = &self.nodes[node_id];
        let level = node.level;

        // Shortcut: if no remaining dimension is filtered or grouped, the
        // node's own aggregate answers the subtree in O(1).
        let residual_needed = (level..self.dimensions.len())
            .any(|d| filters[d] != DimFilter::Any || group_dims.contains(&d));
        if !residual_needed {
            *scanned += 1;
            let key = Self::group_key(path, group_dims);
            groups
                .entry(key)
                .or_insert_with(|| AggValues::empty(self.metrics.len()))
                .merge(&node.agg);
            return;
        }

        if let Some((start, end)) = node.leaf_range {
            // Leaf: scan its records applying residual filters on
            // dimensions at or past this level (shallower dimensions were
            // fixed by the path).
            for rec in &self.records[start as usize..end as usize] {
                *scanned += 1;
                let ok = (level..self.dimensions.len()).all(|d| filters[d].matches(rec.dims[d]));
                if !ok {
                    continue;
                }
                let key: Vec<DictId> = group_dims
                    .iter()
                    .map(|&d| if d < level { path[d] } else { rec.dims[d] })
                    .collect();
                groups
                    .entry(key)
                    .or_insert_with(|| AggValues::empty(self.metrics.len()))
                    .merge(&rec.agg);
            }
            return;
        }

        // Internal node: choose branches on dimension `level`.
        match &filters[level] {
            DimFilter::In(ids) => {
                for &id in ids {
                    if let Ok(pos) = node.children.binary_search_by_key(&id, |(v, _)| *v) {
                        let child = node.children[pos].1;
                        path[level] = id;
                        self.visit(child, filters, group_dims, path, groups, scanned);
                        path[level] = STAR;
                    }
                }
            }
            DimFilter::Any => {
                if group_dims.contains(&level) {
                    // Grouped: need every concrete value.
                    for &(id, child) in &node.children {
                        path[level] = id;
                        self.visit(child, filters, group_dims, path, groups, scanned);
                        path[level] = STAR;
                    }
                } else if let Some(star) = node.star_child {
                    // Unconstrained and ungrouped: the star branch holds
                    // the level's aggregate.
                    self.visit(star, filters, group_dims, path, groups, scanned);
                } else {
                    for &(_, child) in &node.children {
                        self.visit(child, filters, group_dims, path, groups, scanned);
                    }
                }
            }
        }
    }

    fn group_key(path: &[DictId], group_dims: &[usize]) -> Vec<DictId> {
        group_dims.iter().map(|&d| path[d]).collect()
    }

    /// Approximate heap size.
    pub fn size_bytes(&self) -> usize {
        let rec: usize = self
            .records
            .iter()
            .map(|r| r.dims.len() * 4 + r.agg.sums.len() * 24 + 16)
            .sum();
        let nodes: usize = self.nodes.iter().map(|n| 64 + n.children.len() * 12).sum();
        rec + nodes
    }
}

impl std::fmt::Debug for StarTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StarTree")
            .field("dimensions", &self.dimensions)
            .field("metrics", &self.metrics)
            .field("records", &self.records.len())
            .field("nodes", &self.nodes.len())
            .finish()
    }
}
