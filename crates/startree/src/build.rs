//! Star-tree construction (top-down splitting with star-node generation).

use crate::agg::AggValues;
use crate::tree::{Node, StarRecord, StarTree, STAR};
use pinot_common::config::StarTreeConfig;
use pinot_common::{FieldRole, PinotError, Result};
use pinot_segment::{DictId, ImmutableSegment};
use std::collections::HashMap;

/// Build a star-tree over a segment.
///
/// Dimensions default to all single-value non-time dimension columns in
/// descending cardinality order (most selective splits first); metrics
/// default to all metric columns. Both can be overridden in the config.
pub fn build_star_tree(segment: &ImmutableSegment, config: &StarTreeConfig) -> Result<StarTree> {
    let schema = segment.schema();

    let dimensions: Vec<String> = if config.dimensions.is_empty() {
        let mut dims: Vec<(String, usize)> = schema
            .fields()
            .iter()
            .filter(|f| f.role == FieldRole::Dimension && f.single_value)
            .map(|f| {
                let card = segment
                    .column(&f.name)
                    .map(|c| c.dictionary.cardinality())
                    .unwrap_or(0);
                (f.name.clone(), card)
            })
            .collect();
        dims.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        dims.into_iter().map(|(n, _)| n).collect()
    } else {
        config.dimensions.clone()
    };
    if dimensions.is_empty() {
        return Err(PinotError::Segment(
            "star-tree needs at least one dimension".into(),
        ));
    }
    for d in &dimensions {
        let spec = schema.field(d).ok_or_else(|| {
            PinotError::Schema(format!("star-tree dimension {d:?} not in schema"))
        })?;
        if !spec.single_value {
            return Err(PinotError::Schema(format!(
                "star-tree dimension {d:?} must be single-value"
            )));
        }
    }

    let metrics: Vec<String> = if config.metrics.is_empty() {
        schema.metrics().map(|f| f.name.clone()).collect()
    } else {
        config.metrics.clone()
    };
    for m in &metrics {
        let spec = schema
            .field(m)
            .ok_or_else(|| PinotError::Schema(format!("star-tree metric {m:?} not in schema")))?;
        if !spec.data_type.is_numeric() && spec.data_type != pinot_common::DataType::Boolean {
            return Err(PinotError::Schema(format!(
                "star-tree metric {m:?} must be numeric"
            )));
        }
    }

    let skip_star: Vec<usize> = config
        .skip_star_dimensions
        .iter()
        .filter_map(|d| dimensions.iter().position(|x| x == d))
        .collect();

    // 1. Project every document to (dim ids, metric values) and aggregate
    //    duplicates — the tree's base records.
    let dim_cols: Vec<_> = dimensions
        .iter()
        .map(|d| segment.column(d))
        .collect::<Result<_>>()?;
    let metric_cols: Vec<_> = metrics
        .iter()
        .map(|m| segment.column(m))
        .collect::<Result<_>>()?;

    let mut base: HashMap<Vec<DictId>, AggValues> = HashMap::new();
    let mut metric_row = vec![0f64; metrics.len()];
    for doc in 0..segment.num_docs() {
        let dims: Vec<DictId> = dim_cols.iter().map(|c| c.dict_id(doc)).collect();
        for (i, c) in metric_cols.iter().enumerate() {
            metric_row[i] = c.numeric(doc).unwrap_or(0.0);
        }
        base.entry(dims)
            .or_insert_with(|| AggValues::empty(metrics.len()))
            .merge(&AggValues::from_row(&metric_row));
    }
    let mut records: Vec<StarRecord> = base
        .into_iter()
        .map(|(dims, agg)| StarRecord { dims, agg })
        .collect();
    records.sort_by(|a, b| a.dims.cmp(&b.dims));

    // 2. Recursive split.
    let mut ctx = BuildCtx {
        num_dims: dimensions.len(),
        num_metrics: metrics.len(),
        max_leaf_records: config.max_leaf_records.max(1),
        skip_star,
        flat: Vec::new(),
        nodes: Vec::new(),
    };
    let root = ctx.build_node(records, 0);

    Ok(StarTree {
        dimensions,
        metrics,
        records: ctx.flat,
        nodes: ctx.nodes,
        root,
        max_leaf_records: config.max_leaf_records.max(1),
    })
}

struct BuildCtx {
    num_dims: usize,
    num_metrics: usize,
    max_leaf_records: usize,
    skip_star: Vec<usize>,
    flat: Vec<StarRecord>,
    nodes: Vec<Node>,
}

impl BuildCtx {
    fn build_node(&mut self, records: Vec<StarRecord>, level: usize) -> usize {
        let mut agg = AggValues::empty(self.num_metrics);
        for r in &records {
            agg.merge(&r.agg);
        }

        if level == self.num_dims || records.len() <= self.max_leaf_records {
            let start = self.flat.len() as u32;
            self.flat.extend(records);
            let end = self.flat.len() as u32;
            self.nodes.push(Node {
                level,
                agg,
                children: Vec::new(),
                star_child: None,
                leaf_range: Some((start, end)),
            });
            return self.nodes.len() - 1;
        }

        // Group consecutive records by dims[level] (records are sorted).
        let mut children = Vec::new();
        let mut star_input: Vec<StarRecord> = Vec::new();
        let make_star = !self.skip_star.contains(&level);
        let mut i = 0usize;
        while i < records.len() {
            let v = records[i].dims[level];
            let mut j = i + 1;
            while j < records.len() && records[j].dims[level] == v {
                j += 1;
            }
            let group: Vec<StarRecord> = records[i..j].to_vec();
            if make_star {
                star_input.extend(group.iter().cloned());
            }
            let child = self.build_node(group, level + 1);
            children.push((v, child));
            i = j;
        }
        children.sort_by_key(|(v, _)| *v);

        // Star child: collapse this dimension to STAR and re-aggregate by
        // the remaining dimensions.
        let star_child = if make_star && children.len() > 1 {
            let mut collapsed: HashMap<Vec<DictId>, AggValues> = HashMap::new();
            for mut r in star_input {
                r.dims[level] = STAR;
                collapsed
                    .entry(r.dims.clone())
                    .or_insert_with(|| AggValues::empty(self.num_metrics))
                    .merge(&r.agg);
            }
            let mut star_records: Vec<StarRecord> = collapsed
                .into_iter()
                .map(|(dims, agg)| StarRecord { dims, agg })
                .collect();
            star_records.sort_by(|a, b| a.dims.cmp(&b.dims));
            Some(self.build_node(star_records, level + 1))
        } else {
            None
        };

        self.nodes.push(Node {
            level,
            agg,
            children,
            star_child,
            leaf_range: None,
        });
        self.nodes.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DimFilter;
    use pinot_common::{DataType, FieldSpec, Record, Schema, Value};
    use pinot_segment::builder::{BuilderConfig, SegmentBuilder};

    /// The paper's Figure 9/10 style data: Browser × Country × Locale with
    /// an Impressions metric.
    fn build_segment(rows: &[(&str, &str, &str, i64)]) -> ImmutableSegment {
        let schema = Schema::new(
            "t",
            vec![
                FieldSpec::dimension("browser", DataType::String),
                FieldSpec::dimension("country", DataType::String),
                FieldSpec::dimension("locale", DataType::String),
                FieldSpec::metric("impressions", DataType::Long),
            ],
        )
        .unwrap();
        let mut b = SegmentBuilder::new(schema, BuilderConfig::new("seg", "t_OFFLINE")).unwrap();
        for (br, co, lo, imp) in rows {
            b.add(Record::new(vec![
                Value::from(*br),
                Value::from(*co),
                Value::from(*lo),
                Value::Long(*imp),
            ]))
            .unwrap();
        }
        b.build().unwrap()
    }

    fn sample_rows() -> Vec<(&'static str, &'static str, &'static str, i64)> {
        vec![
            ("firefox", "ca", "en", 10),
            ("firefox", "ca", "fr", 20),
            ("firefox", "us", "en", 30),
            ("safari", "ca", "en", 40),
            ("safari", "us", "en", 50),
            ("chrome", "mx", "es", 60),
            ("chrome", "us", "en", 70),
            ("firefox", "ca", "en", 5),
        ]
    }

    fn tree_over(seg: &ImmutableSegment, dims: &[&str], max_leaf: usize) -> StarTree {
        build_star_tree(
            seg,
            &StarTreeConfig {
                dimensions: dims.iter().map(|s| s.to_string()).collect(),
                metrics: vec!["impressions".into()],
                max_leaf_records: max_leaf,
                skip_star_dimensions: vec![],
            },
        )
        .unwrap()
    }

    fn in_filter(seg: &ImmutableSegment, col: &str, vals: &[&str]) -> DimFilter {
        let dict = &seg.column(col).unwrap().dictionary;
        let mut ids: Vec<u32> = vals
            .iter()
            .filter_map(|v| dict.id_of(&Value::from(*v)))
            .collect();
        ids.sort_unstable();
        DimFilter::In(ids)
    }

    #[test]
    fn figure9_single_predicate_sum() {
        // select sum(Impressions) where Browser = 'firefox'
        let seg = build_segment(&sample_rows());
        let tree = tree_over(&seg, &["browser", "country", "locale"], 1);
        let filters = vec![
            in_filter(&seg, "browser", &["firefox"]),
            DimFilter::Any,
            DimFilter::Any,
        ];
        let r = tree.execute(&filters, &[]);
        assert_eq!(r.groups.len(), 1);
        assert_eq!(r.groups[0].1.sums[0], 65.0); // 10+20+30+5
        assert_eq!(r.raw_docs_matched, 4);
    }

    #[test]
    fn figure10_or_predicate_group_by() {
        // select sum(Impressions) where Browser in ('firefox','safari')
        // group by Country
        let seg = build_segment(&sample_rows());
        let tree = tree_over(&seg, &["browser", "country", "locale"], 1);
        let country_dim = tree.dimension_index("country").unwrap();
        let filters = vec![
            in_filter(&seg, "browser", &["firefox", "safari"]),
            DimFilter::Any,
            DimFilter::Any,
        ];
        let r = tree.execute(&filters, &[country_dim]);
        let dict = &seg.column("country").unwrap().dictionary;
        let by_country: HashMap<String, f64> = r
            .groups
            .iter()
            .map(|(k, a)| (dict.value_of(k[0]).as_str().unwrap().to_string(), a.sums[0]))
            .collect();
        assert_eq!(by_country["ca"], 75.0); // 10+20+5+40
        assert_eq!(by_country["us"], 80.0); // 30+50
        assert_eq!(by_country.len(), 2);
    }

    #[test]
    fn unfiltered_total_uses_star_path() {
        let seg = build_segment(&sample_rows());
        let tree = tree_over(&seg, &["browser", "country", "locale"], 1);
        let filters = vec![DimFilter::Any, DimFilter::Any, DimFilter::Any];
        let r = tree.execute(&filters, &[]);
        assert_eq!(r.groups[0].1.sums[0], 285.0);
        assert_eq!(r.groups[0].1.count, 8);
        // Root aggregate shortcut: O(1) work.
        assert_eq!(r.preagg_docs_scanned, 1);
    }

    #[test]
    fn preaggregation_reduces_scanned_docs() {
        // Many raw rows, few distinct dim combos: tree scans far fewer.
        let mut rows = Vec::new();
        for i in 0..1000i64 {
            let browsers = ["firefox", "safari", "chrome"];
            let countries = ["us", "ca"];
            rows.push((
                browsers[(i % 3) as usize],
                countries[(i % 2) as usize],
                "en",
                i,
            ));
        }
        let seg = build_segment(&rows);
        let tree = tree_over(&seg, &["browser", "country", "locale"], 1);
        let filters = vec![
            in_filter(&seg, "browser", &["firefox"]),
            DimFilter::Any,
            DimFilter::Any,
        ];
        let r = tree.execute(&filters, &[]);
        // firefox rows: i % 3 == 0 → 334 rows.
        assert_eq!(r.raw_docs_matched, 334);
        assert!(
            r.preagg_docs_scanned < 10,
            "scanned {}",
            r.preagg_docs_scanned
        );
        let expect: f64 = (0..1000i64).filter(|i| i % 3 == 0).map(|i| i as f64).sum();
        assert_eq!(r.groups[0].1.sums[0], expect);
    }

    #[test]
    fn max_leaf_records_stops_splitting() {
        let seg = build_segment(&sample_rows());
        let small = tree_over(&seg, &["browser", "country", "locale"], 1);
        let big = tree_over(&seg, &["browser", "country", "locale"], 1000);
        // A huge leaf threshold yields a single-leaf tree.
        assert!(big.num_nodes() < small.num_nodes());
        assert_eq!(big.num_nodes(), 1);
        // Results still identical.
        let filters = vec![
            in_filter(&seg, "browser", &["chrome"]),
            DimFilter::Any,
            DimFilter::Any,
        ];
        let a = small.execute(&filters, &[]);
        let b = big.execute(&filters, &[]);
        assert_eq!(a.groups[0].1.sums[0], b.groups[0].1.sums[0]);
        assert_eq!(a.groups[0].1.count, b.groups[0].1.count);
    }

    #[test]
    fn skip_star_dimensions_still_correct() {
        let seg = build_segment(&sample_rows());
        let tree = build_star_tree(
            &seg,
            &StarTreeConfig {
                dimensions: vec!["browser".into(), "country".into(), "locale".into()],
                metrics: vec!["impressions".into()],
                max_leaf_records: 1,
                skip_star_dimensions: vec!["browser".into()],
            },
        )
        .unwrap();
        let filters = vec![DimFilter::Any, DimFilter::Any, DimFilter::Any];
        let r = tree.execute(&filters, &[]);
        assert_eq!(r.groups[0].1.sums[0], 285.0);
        assert_eq!(r.groups[0].1.count, 8);
    }

    #[test]
    fn default_dimension_order_by_cardinality() {
        let seg = build_segment(&sample_rows());
        let tree = build_star_tree(
            &seg,
            &StarTreeConfig {
                dimensions: vec![],
                metrics: vec![],
                max_leaf_records: 1,
                skip_star_dimensions: vec![],
            },
        )
        .unwrap();
        // browser has 3 distinct values, country 3, locale 3 — ties broken
        // by name; all three dims present.
        assert_eq!(tree.dimensions().len(), 3);
        assert_eq!(tree.metrics(), &["impressions".to_string()]);
    }

    #[test]
    fn filter_on_deep_dimension_scans_leaves() {
        let seg = build_segment(&sample_rows());
        let tree = tree_over(&seg, &["browser", "country", "locale"], 100);
        // Single leaf; filter on locale must still work via residual scan.
        let filters = vec![
            DimFilter::Any,
            DimFilter::Any,
            in_filter(&seg, "locale", &["es"]),
        ];
        let r = tree.execute(&filters, &[]);
        assert_eq!(r.groups[0].1.sums[0], 60.0);
        assert_eq!(r.raw_docs_matched, 1);
    }

    #[test]
    fn rejects_bad_config() {
        let seg = build_segment(&sample_rows());
        assert!(build_star_tree(
            &seg,
            &StarTreeConfig {
                dimensions: vec!["nope".into()],
                metrics: vec![],
                max_leaf_records: 1,
                skip_star_dimensions: vec![],
            }
        )
        .is_err());
        assert!(build_star_tree(
            &seg,
            &StarTreeConfig {
                dimensions: vec!["browser".into()],
                metrics: vec!["browser".into()], // non-numeric metric
                max_leaf_records: 1,
                skip_star_dimensions: vec![],
            }
        )
        .is_err());
    }

    #[test]
    fn empty_segment_tree() {
        let seg = build_segment(&[]);
        let tree = tree_over(&seg, &["browser", "country", "locale"], 10);
        let r = tree.execute(&[DimFilter::Any, DimFilter::Any, DimFilter::Any], &[]);
        assert_eq!(r.groups.len(), 1);
        assert!(r.groups[0].1.is_empty());
    }
}
