//! Property tests: for any data and any filter/group-by combination over
//! tree dimensions, the star-tree must produce exactly the same aggregates
//! as a brute-force scan of the raw rows.

use pinot_common::config::StarTreeConfig;
use pinot_common::{DataType, FieldSpec, Record, Schema, Value};
use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
use pinot_segment::ImmutableSegment;
use pinot_startree::{build_star_tree, DimFilter};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Row {
    a: i64, // dim, cardinality ~4
    b: i64, // dim, cardinality ~3
    c: i64, // dim, cardinality ~5
    m: i64, // metric
}

fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (0i64..4, 0i64..3, 0i64..5, -100i64..100).prop_map(|(a, b, c, m)| Row { a, b, c, m }),
        1..300,
    )
}

fn build(
    rows: &[Row],
    max_leaf: usize,
    skip_star: Vec<String>,
) -> (ImmutableSegment, pinot_startree::StarTree) {
    let schema = Schema::new(
        "t",
        vec![
            FieldSpec::dimension("a", DataType::Long),
            FieldSpec::dimension("b", DataType::Long),
            FieldSpec::dimension("c", DataType::Long),
            FieldSpec::metric("m", DataType::Long),
        ],
    )
    .unwrap();
    let mut b = SegmentBuilder::new(schema, BuilderConfig::new("s", "t")).unwrap();
    for r in rows {
        b.add(Record::new(vec![
            Value::Long(r.a),
            Value::Long(r.b),
            Value::Long(r.c),
            Value::Long(r.m),
        ]))
        .unwrap();
    }
    let seg = b.build().unwrap();
    let tree = build_star_tree(
        &seg,
        &StarTreeConfig {
            dimensions: vec!["a".into(), "b".into(), "c".into()],
            metrics: vec!["m".into()],
            max_leaf_records: max_leaf,
            skip_star_dimensions: skip_star,
        },
    )
    .unwrap();
    (seg, tree)
}

/// Filter spec in raw value space: None = Any, Some(vals) = IN.
type RawFilter = Option<Vec<i64>>;

fn to_dim_filter(seg: &ImmutableSegment, col: &str, f: &RawFilter) -> DimFilter {
    match f {
        None => DimFilter::Any,
        Some(vals) => {
            let dict = &seg.column(col).unwrap().dictionary;
            let mut ids: Vec<u32> = vals
                .iter()
                .filter_map(|v| dict.id_of(&Value::Long(*v)))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            DimFilter::In(ids)
        }
    }
}

fn filter_strategy(card: i64) -> impl Strategy<Value = RawFilter> {
    prop_oneof![
        3 => Just(None),
        2 => prop::collection::vec(0..card, 1..3).prop_map(Some),
    ]
}

fn brute_force(
    rows: &[Row],
    fa: &RawFilter,
    fb: &RawFilter,
    fc: &RawFilter,
    group: &[usize],
) -> HashMap<Vec<i64>, (u64, f64, f64, f64)> {
    let mut out: HashMap<Vec<i64>, (u64, f64, f64, f64)> = HashMap::new();
    let matches = |f: &RawFilter, v: i64| f.as_ref().is_none_or(|s| s.contains(&v));
    for r in rows {
        if !(matches(fa, r.a) && matches(fb, r.b) && matches(fc, r.c)) {
            continue;
        }
        let dims = [r.a, r.b, r.c];
        let key: Vec<i64> = group.iter().map(|&d| dims[d]).collect();
        let e = out
            .entry(key)
            .or_insert((0, 0.0, f64::INFINITY, f64::NEG_INFINITY));
        e.0 += 1;
        e.1 += r.m as f64;
        e.2 = e.2.min(r.m as f64);
        e.3 = e.3.max(r.m as f64);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matches_brute_force(
        rows in rows_strategy(),
        fa in filter_strategy(4),
        fb in filter_strategy(3),
        fc in filter_strategy(5),
        group_mask in 0usize..8,
        max_leaf in prop::sample::select(vec![1usize, 2, 10, 1000]),
        skip_star_b in any::<bool>(),
    ) {
        let skip = if skip_star_b { vec!["b".to_string()] } else { vec![] };
        let (seg, tree) = build(&rows, max_leaf, skip);
        let group: Vec<usize> = (0..3).filter(|d| group_mask & (1 << d) != 0).collect();
        let filters = vec![
            to_dim_filter(&seg, "a", &fa),
            to_dim_filter(&seg, "b", &fb),
            to_dim_filter(&seg, "c", &fc),
        ];
        let result = tree.execute(&filters, &group);
        let expected = brute_force(&rows, &fa, &fb, &fc, &group);

        // Translate tree group keys (dict ids) back to raw values.
        let dims = ["a", "b", "c"];
        let mut got: HashMap<Vec<i64>, (u64, f64, f64, f64)> = HashMap::new();
        for (key, agg) in &result.groups {
            if agg.count == 0 {
                // Ungrouped empty result over empty match set.
                continue;
            }
            let raw_key: Vec<i64> = key
                .iter()
                .zip(group.iter())
                .map(|(id, &d)| {
                    seg.column(dims[d]).unwrap().dictionary.value_of(*id).as_i64().unwrap()
                })
                .collect();
            got.insert(raw_key, (agg.count, agg.sums[0], agg.mins[0], agg.maxs[0]));
        }

        prop_assert_eq!(got.len(), expected.len());
        for (k, (cnt, sum, min, max)) in &expected {
            let (gc, gs, gmin, gmax) = got.get(k).copied()
                .ok_or_else(|| TestCaseError::fail(format!("missing group {k:?}")))?;
            prop_assert_eq!(gc, *cnt);
            prop_assert!((gs - sum).abs() < 1e-6);
            prop_assert_eq!(gmin, *min);
            prop_assert_eq!(gmax, *max);
        }

        // The scan-accounting invariant behind Figure 13: the tree never
        // claims more raw matches than exist.
        prop_assert_eq!(
            result.raw_docs_matched,
            expected.values().map(|e| e.0).sum::<u64>()
        );
    }
}
