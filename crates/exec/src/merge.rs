//! Merging partial results and shaping the final response.
//!
//! Servers merge per-segment results; brokers merge per-server results
//! (§3.3.3 steps 6–7). Both use [`merge_intermediate`]. The broker then
//! calls [`finalize`] to apply top-n ordering and produce the client shape.

use crate::segment_exec::{IntermediateResult, ResultPayload};
use pinot_common::profile::ProfileNode;
use pinot_common::query::{AggregationRow, GroupByRows, QueryResult};
use pinot_common::{PinotError, Result};
use pinot_pql::Query;

/// Fold `other` into `acc`. Both must come from the same query.
pub fn merge_intermediate(acc: &mut IntermediateResult, other: IntermediateResult) -> Result<()> {
    acc.stats.merge(&other.stats);
    merge_profiles(&mut acc.profile, other.profile);
    merge_payload(&mut acc.payload, other.payload)
}

/// The payload half of [`merge_intermediate`]: commutative and
/// associative (pinned by the PR 6 fold-algebra proptests), which is
/// what lets morsel partials merge in any fixed order and stay
/// byte-identical. Selection rows concatenate in call order, so callers
/// supply partials in ascending doc order.
pub(crate) fn merge_payload(acc: &mut ResultPayload, other: ResultPayload) -> Result<()> {
    match (acc, other) {
        (ResultPayload::Aggregation(a), ResultPayload::Aggregation(b)) => {
            if a.len() != b.len() {
                return Err(PinotError::Internal(
                    "aggregation arity mismatch in merge".into(),
                ));
            }
            for (x, y) in a.iter_mut().zip(b) {
                x.merge(y)?;
            }
            Ok(())
        }
        (ResultPayload::GroupBy(a), ResultPayload::GroupBy(b)) => {
            for (key, states) in b {
                match a.get_mut(&key) {
                    Some(existing) => {
                        for (x, y) in existing.iter_mut().zip(states) {
                            x.merge(y)?;
                        }
                    }
                    None => {
                        a.insert(key, states);
                    }
                }
            }
            Ok(())
        }
        (
            ResultPayload::Selection { columns, rows },
            ResultPayload::Selection {
                columns: oc,
                rows: or,
            },
        ) => {
            if columns.is_empty() {
                *columns = oc;
            }
            rows.extend(or);
            Ok(())
        }
        _ => Err(PinotError::Internal(
            "mismatched result payloads in merge".into(),
        )),
    }
}

/// Accumulate profile trees as siblings under a transparent `collect`
/// container. Servers and brokers later replace the container with their
/// own aggregation node ([`collected_profiles`] flattens it back out).
fn merge_profiles(acc: &mut Option<ProfileNode>, other: Option<ProfileNode>) {
    let Some(other) = other else { return };
    let Some(node) = acc else {
        *acc = Some(other);
        return;
    };
    if node.operator != "collect" {
        let first = std::mem::replace(node, ProfileNode::new("collect"));
        // One allocation up front instead of a doubling chain as the
        // per-segment trees accumulate.
        node.children.reserve(16);
        node.children.push(first);
    }
    if other.operator == "collect" {
        node.children.extend(other.children);
    } else {
        node.children.push(other);
    }
}

/// Flatten a merged profile back into the accumulated per-unit trees:
/// a `collect` container yields its children, a single tree yields itself.
pub fn collected_profiles(profile: Option<ProfileNode>) -> Vec<ProfileNode> {
    match profile {
        None => Vec::new(),
        Some(node) if node.operator == "collect" => node.children,
        Some(node) => vec![node],
    }
}

/// Shape the merged intermediate result into the client-facing form,
/// applying TOP/LIMIT.
pub fn finalize(result: IntermediateResult, query: &Query) -> Result<QueryResult> {
    match result.payload {
        ResultPayload::Aggregation(states) => {
            let aggs = query.aggregations();
            if aggs.len() != states.len() {
                return Err(PinotError::Internal(
                    "aggregation arity mismatch in finalize".into(),
                ));
            }
            Ok(QueryResult::Aggregation(
                aggs.iter()
                    .zip(states)
                    .map(|(a, s)| AggregationRow {
                        function: a.to_string(),
                        value: s.finalize(),
                    })
                    .collect(),
            ))
        }
        ResultPayload::GroupBy(groups) => {
            let aggs = query.aggregations();
            let top = query.effective_top();
            let mut tables = Vec::with_capacity(aggs.len());
            for (i, a) in aggs.iter().enumerate() {
                // Order groups by this aggregation's value, descending; tie
                // break on the key for deterministic output.
                let mut rows: Vec<(Vec<pinot_common::Value>, f64, pinot_common::Value)> = groups
                    .iter()
                    .map(|(key, states)| {
                        let val = states[i].finalize();
                        (
                            key.iter().map(|g| g.to_value()).collect(),
                            states[i].finalize_f64(),
                            val,
                        )
                    })
                    .collect();
                rows.sort_by(|x, y| {
                    y.1.total_cmp(&x.1)
                        .then_with(|| format!("{:?}", x.0).cmp(&format!("{:?}", y.0)))
                });
                rows.truncate(top);
                tables.push(GroupByRows {
                    function: a.to_string(),
                    group_columns: query.group_by.clone(),
                    rows: rows.into_iter().map(|(k, _, v)| (k, v)).collect(),
                });
            }
            Ok(QueryResult::GroupBy(tables))
        }
        ResultPayload::Selection { columns, mut rows } => {
            rows.truncate(query.effective_limit());
            Ok(QueryResult::Selection { columns, rows })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggstate::AggState;
    use crate::key::key_of;
    use pinot_common::query::ExecutionStats;
    use pinot_common::Value;
    use pinot_pql::parse;
    use std::collections::HashMap;

    fn agg_result(states: Vec<AggState>) -> IntermediateResult {
        IntermediateResult {
            payload: ResultPayload::Aggregation(states),
            stats: ExecutionStats::default(),
            profile: None,
        }
    }

    #[test]
    fn merge_aggregations() {
        let mut a = agg_result(vec![AggState::Count(3), AggState::Sum(1.5)]);
        let b = agg_result(vec![AggState::Count(4), AggState::Sum(2.5)]);
        merge_intermediate(&mut a, b).unwrap();
        match &a.payload {
            ResultPayload::Aggregation(s) => {
                assert_eq!(s[0], AggState::Count(7));
                assert_eq!(s[1], AggState::Sum(4.0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn merge_mismatched_payloads_fails() {
        let mut a = agg_result(vec![AggState::Count(1)]);
        let b = IntermediateResult {
            payload: ResultPayload::GroupBy(HashMap::new()),
            stats: ExecutionStats::default(),
            profile: None,
        };
        assert!(merge_intermediate(&mut a, b).is_err());
        let mut c = agg_result(vec![AggState::Count(1)]);
        let d = agg_result(vec![AggState::Count(1), AggState::Count(2)]);
        assert!(merge_intermediate(&mut c, d).is_err());
    }

    #[test]
    fn merge_group_by_unions_keys() {
        let mut g1 = HashMap::new();
        g1.insert(key_of(&[Value::from("a")]), vec![AggState::Sum(1.0)]);
        g1.insert(key_of(&[Value::from("b")]), vec![AggState::Sum(2.0)]);
        let mut g2 = HashMap::new();
        g2.insert(key_of(&[Value::from("b")]), vec![AggState::Sum(3.0)]);
        g2.insert(key_of(&[Value::from("c")]), vec![AggState::Sum(4.0)]);
        let mut a = IntermediateResult {
            payload: ResultPayload::GroupBy(g1),
            stats: ExecutionStats::default(),
            profile: None,
        };
        merge_intermediate(
            &mut a,
            IntermediateResult {
                payload: ResultPayload::GroupBy(g2),
                stats: ExecutionStats::default(),
                profile: None,
            },
        )
        .unwrap();
        match &a.payload {
            ResultPayload::GroupBy(g) => {
                assert_eq!(g.len(), 3);
                assert_eq!(g[&key_of(&[Value::from("b")])][0], AggState::Sum(5.0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn finalize_orders_and_trims_groups() {
        let q = parse("SELECT SUM(m) FROM t GROUP BY g TOP 2").unwrap();
        let mut groups = HashMap::new();
        for (k, v) in [("a", 5.0), ("b", 9.0), ("c", 1.0), ("d", 7.0)] {
            groups.insert(key_of(&[Value::from(k)]), vec![AggState::Sum(v)]);
        }
        let r = finalize(
            IntermediateResult {
                payload: ResultPayload::GroupBy(groups),
                stats: ExecutionStats::default(),
                profile: None,
            },
            &q,
        )
        .unwrap();
        match r {
            QueryResult::GroupBy(tables) => {
                assert_eq!(tables.len(), 1);
                let rows = &tables[0].rows;
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].0, vec![Value::from("b")]);
                assert_eq!(rows[0].1, Value::Double(9.0));
                assert_eq!(rows[1].0, vec![Value::from("d")]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn finalize_selection_truncates() {
        let q = parse("SELECT a FROM t LIMIT 2").unwrap();
        let r = finalize(
            IntermediateResult {
                payload: ResultPayload::Selection {
                    columns: vec!["a".into()],
                    rows: vec![
                        vec![Value::Long(1)],
                        vec![Value::Long(2)],
                        vec![Value::Long(3)],
                    ],
                },
                stats: ExecutionStats::default(),
                profile: None,
            },
            &q,
        )
        .unwrap();
        match r {
            QueryResult::Selection { rows, .. } => assert_eq!(rows.len(), 2),
            other => panic!("{other:?}"),
        }
    }
}
