//! Aggregation function state: accumulate per segment, merge across
//! segments and servers, finalize at the broker.

use crate::key::GroupValue;
use pinot_common::{PinotError, Result, Value};
use pinot_pql::AggFunction;
use std::collections::HashSet;

/// Intermediate state of one aggregation function.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    Count(u64),
    Sum(f64),
    Min(f64),
    Max(f64),
    Avg {
        sum: f64,
        count: u64,
    },
    /// Exact distinct count: set of canonical scalar values.
    Distinct(HashSet<GroupValue>),
}

impl AggState {
    /// Identity state for a function.
    pub fn new(function: AggFunction) -> AggState {
        match function {
            AggFunction::Count => AggState::Count(0),
            AggFunction::Sum => AggState::Sum(0.0),
            AggFunction::Min => AggState::Min(f64::INFINITY),
            AggFunction::Max => AggState::Max(f64::NEG_INFINITY),
            AggFunction::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunction::DistinctCount => AggState::Distinct(HashSet::new()),
        }
    }

    /// Accumulate one numeric input (COUNT ignores the value).
    #[inline]
    pub fn accept_numeric(&mut self, x: f64) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(s) => *s += x,
            AggState::Min(m) => *m = m.min(x),
            AggState::Max(m) => *m = m.max(x),
            AggState::Avg { sum, count } => {
                *sum += x;
                *count += 1;
            }
            AggState::Distinct(set) => {
                set.insert(GroupValue::from_value(&Value::Double(x)));
            }
        }
    }

    /// Accumulate one value (needed for DISTINCTCOUNT over strings).
    pub fn accept_value(&mut self, v: &Value) {
        match self {
            AggState::Distinct(set) => {
                set.insert(GroupValue::from_value(v));
            }
            _ => {
                if let Some(x) = v.as_f64() {
                    self.accept_numeric(x);
                } else if matches!(self, AggState::Count(_)) {
                    self.accept_numeric(0.0);
                }
            }
        }
    }

    /// Accumulate a preaggregated contribution (star-tree path).
    pub fn accept_preaggregated(&mut self, count: u64, sum: f64, min: f64, max: f64) -> Result<()> {
        match self {
            AggState::Count(n) => *n += count,
            AggState::Sum(s) => *s += sum,
            AggState::Min(m) => *m = m.min(min),
            AggState::Max(m) => *m = m.max(max),
            AggState::Avg { sum: s, count: c } => {
                *s += sum;
                *c += count;
            }
            AggState::Distinct(_) => {
                return Err(PinotError::Internal(
                    "DISTINCTCOUNT cannot consume preaggregated data".into(),
                ))
            }
        }
        Ok(())
    }

    /// Merge another state of the same function.
    pub fn merge(&mut self, other: AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Min(a), AggState::Min(b)) => *a = a.min(b),
            (AggState::Max(a), AggState::Max(b)) => *a = a.max(b),
            (AggState::Avg { sum: a, count: c }, AggState::Avg { sum: b, count: d }) => {
                *a += b;
                *c += d;
            }
            (AggState::Distinct(a), AggState::Distinct(b)) => a.extend(b),
            (a, b) => {
                return Err(PinotError::Internal(format!(
                    "cannot merge mismatched aggregation states {a:?} / {b:?}"
                )))
            }
        }
        Ok(())
    }

    /// Final client-facing value.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Long(*n as i64),
            AggState::Sum(s) => Value::Double(*s),
            AggState::Min(m) => {
                if m.is_finite() {
                    Value::Double(*m)
                } else {
                    Value::Null
                }
            }
            AggState::Max(m) => {
                if m.is_finite() {
                    Value::Double(*m)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *count as f64)
                }
            }
            AggState::Distinct(set) => Value::Long(set.len() as i64),
        }
    }

    /// Numeric view of the final value (for top-n ordering); empty
    /// min/max/avg order last.
    pub fn finalize_f64(&self) -> f64 {
        match self.finalize() {
            Value::Long(n) => n as f64,
            Value::Double(d) => d,
            _ => f64::NEG_INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sum_min_max_avg() {
        let inputs = [3.0, -1.0, 7.0];
        let mut states: Vec<AggState> = [
            AggFunction::Count,
            AggFunction::Sum,
            AggFunction::Min,
            AggFunction::Max,
            AggFunction::Avg,
        ]
        .iter()
        .map(|f| AggState::new(*f))
        .collect();
        for x in inputs {
            for s in &mut states {
                s.accept_numeric(x);
            }
        }
        assert_eq!(states[0].finalize(), Value::Long(3));
        assert_eq!(states[1].finalize(), Value::Double(9.0));
        assert_eq!(states[2].finalize(), Value::Double(-1.0));
        assert_eq!(states[3].finalize(), Value::Double(7.0));
        assert_eq!(states[4].finalize(), Value::Double(3.0));
    }

    #[test]
    fn empty_states_finalize_sanely() {
        assert_eq!(AggState::new(AggFunction::Count).finalize(), Value::Long(0));
        assert_eq!(
            AggState::new(AggFunction::Sum).finalize(),
            Value::Double(0.0)
        );
        assert_eq!(AggState::new(AggFunction::Min).finalize(), Value::Null);
        assert_eq!(AggState::new(AggFunction::Max).finalize(), Value::Null);
        assert_eq!(AggState::new(AggFunction::Avg).finalize(), Value::Null);
        assert_eq!(
            AggState::new(AggFunction::DistinctCount).finalize(),
            Value::Long(0)
        );
    }

    #[test]
    fn distinct_count_exact_over_values() {
        let mut s = AggState::new(AggFunction::DistinctCount);
        for v in ["a", "b", "a", "c", "b"] {
            s.accept_value(&Value::from(v));
        }
        assert_eq!(s.finalize(), Value::Long(3));
    }

    #[test]
    fn merge_matches_streaming() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.7 - 20.0).collect();
        for f in [
            AggFunction::Count,
            AggFunction::Sum,
            AggFunction::Min,
            AggFunction::Max,
            AggFunction::Avg,
        ] {
            let mut whole = AggState::new(f);
            for &x in &xs {
                whole.accept_numeric(x);
            }
            let mut left = AggState::new(f);
            let mut right = AggState::new(f);
            for &x in &xs[..50] {
                left.accept_numeric(x);
            }
            for &x in &xs[50..] {
                right.accept_numeric(x);
            }
            left.merge(right).unwrap();
            assert_eq!(left.finalize(), whole.finalize(), "{f:?}");
        }
    }

    #[test]
    fn distinct_merge_unions() {
        let mut a = AggState::new(AggFunction::DistinctCount);
        let mut b = AggState::new(AggFunction::DistinctCount);
        a.accept_value(&Value::Long(1));
        a.accept_value(&Value::Long(2));
        b.accept_value(&Value::Long(2));
        b.accept_value(&Value::Long(3));
        a.merge(b).unwrap();
        assert_eq!(a.finalize(), Value::Long(3));
    }

    #[test]
    fn mismatched_merge_fails() {
        let mut a = AggState::new(AggFunction::Count);
        assert!(a.merge(AggState::new(AggFunction::Sum)).is_err());
    }

    #[test]
    fn preaggregated_contributions() {
        let mut s = AggState::new(AggFunction::Avg);
        s.accept_preaggregated(4, 20.0, 1.0, 9.0).unwrap();
        s.accept_preaggregated(1, 5.0, 5.0, 5.0).unwrap();
        assert_eq!(s.finalize(), Value::Double(5.0));
        let mut d = AggState::new(AggFunction::DistinctCount);
        assert!(d.accept_preaggregated(1, 1.0, 1.0, 1.0).is_err());
    }
}
