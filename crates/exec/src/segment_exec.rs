//! Executing one query against one segment.

use crate::aggstate::AggState;
use crate::key::{GroupKey, GroupValue};
use crate::planner;
use crate::selection::DocSelection;
use pinot_common::query::ExecutionStats;
use pinot_common::{PinotError, Result, Value};
use pinot_pql::{AggregateExpr, Query, SelectList};
use pinot_segment::column::ColumnData;
use pinot_segment::ImmutableSegment;
use pinot_startree::StarTree;
use std::collections::HashMap;
use std::sync::Arc;

/// A query-ready segment: the immutable data plus its optional star-tree.
#[derive(Clone)]
pub struct SegmentHandle {
    pub segment: Arc<ImmutableSegment>,
    pub star_tree: Option<Arc<StarTree>>,
}

impl SegmentHandle {
    pub fn new(segment: Arc<ImmutableSegment>) -> SegmentHandle {
        SegmentHandle {
            segment,
            star_tree: None,
        }
    }

    pub fn with_star_tree(mut self, tree: Arc<StarTree>) -> SegmentHandle {
        self.star_tree = Some(tree);
        self
    }
}

/// Partial result produced by a segment (and merged across segments and
/// servers). The same shape flows server → broker.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultPayload {
    /// Ungrouped aggregation states, one per aggregation expression.
    Aggregation(Vec<AggState>),
    /// Grouped aggregation states.
    GroupBy(HashMap<GroupKey, Vec<AggState>>),
    /// Projected rows.
    Selection {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
}

/// A partial result plus its execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct IntermediateResult {
    pub payload: ResultPayload,
    pub stats: ExecutionStats,
}

impl IntermediateResult {
    /// Identity element matching the query shape.
    pub fn empty_for(query: &Query) -> IntermediateResult {
        let payload = match &query.select {
            SelectList::Aggregations(aggs) if query.group_by.is_empty() => {
                ResultPayload::Aggregation(aggs.iter().map(|a| AggState::new(a.function)).collect())
            }
            SelectList::Aggregations(_) => ResultPayload::GroupBy(HashMap::new()),
            SelectList::Projections(cols) => ResultPayload::Selection {
                columns: cols.clone(),
                rows: Vec::new(),
            },
            SelectList::Star => ResultPayload::Selection {
                columns: Vec::new(),
                rows: Vec::new(),
            },
        };
        IntermediateResult {
            payload,
            stats: ExecutionStats::default(),
        }
    }
}

/// Execute a query on one segment, producing a partial result.
pub fn execute_on_segment(handle: &SegmentHandle, query: &Query) -> Result<IntermediateResult> {
    let segment = &handle.segment;
    let mut stats = ExecutionStats {
        num_segments_queried: 1,
        num_segments_processed: 1,
        total_docs: segment.num_docs() as u64,
        ..Default::default()
    };

    // Validate referenced columns up front for a clean error.
    for c in query.referenced_columns() {
        segment.column(c)?;
    }

    // 1. Metadata-only plan.
    if let Some(values) = planner::metadata_only_plan(segment, query) {
        record_plan(&mut stats, segment.name(), planner::PlanKind::MetadataOnly);
        let aggs = query.aggregations();
        let mut states = Vec::with_capacity(aggs.len());
        for (a, v) in aggs.iter().zip(values) {
            let mut s = AggState::new(a.function);
            match (&mut s, v) {
                (AggState::Count(n), Value::Long(x)) => *n = x as u64,
                (AggState::Min(m), Value::Double(x)) => *m = x,
                (AggState::Max(m), Value::Double(x)) => *m = x,
                _ => {
                    return Err(PinotError::Internal(
                        "metadata plan produced unexpected value shape".into(),
                    ))
                }
            }
            states.push(s);
        }
        return Ok(IntermediateResult {
            payload: ResultPayload::Aggregation(states),
            stats,
        });
    }

    // 2. Star-tree plan.
    if let Some((filters, group_dims)) = planner::try_star_tree(handle, query) {
        let tree = handle.star_tree.as_ref().expect("checked by try_star_tree");
        record_plan(&mut stats, segment.name(), planner::PlanKind::StarTree);
        return execute_star_tree(segment, tree, query, &filters, &group_dims, stats);
    }

    // 3. Raw plan: filter then aggregate / group / select.
    record_plan(&mut stats, segment.name(), planner::PlanKind::Raw);
    let selection = planner::evaluate_filter(segment, query.filter.as_ref(), &mut stats)?;
    stats.num_docs_scanned = selection.count();

    match &query.select {
        SelectList::Aggregations(aggs) if query.group_by.is_empty() => {
            let states = aggregate_selection(segment, aggs, &selection, &mut stats)?;
            Ok(IntermediateResult {
                payload: ResultPayload::Aggregation(states),
                stats,
            })
        }
        SelectList::Aggregations(aggs) => {
            let groups =
                group_by_selection(segment, aggs, &query.group_by, &selection, &mut stats)?;
            Ok(IntermediateResult {
                payload: ResultPayload::GroupBy(groups),
                stats,
            })
        }
        SelectList::Projections(cols) => {
            let rows = select_rows(
                segment,
                cols,
                &selection,
                query.effective_limit(),
                &mut stats,
            )?;
            Ok(IntermediateResult {
                payload: ResultPayload::Selection {
                    columns: cols.clone(),
                    rows,
                },
                stats,
            })
        }
        SelectList::Star => {
            let cols: Vec<String> = segment
                .schema()
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect();
            let rows = select_rows(
                segment,
                &cols,
                &selection,
                query.effective_limit(),
                &mut stats,
            )?;
            Ok(IntermediateResult {
                payload: ResultPayload::Selection {
                    columns: cols,
                    rows,
                },
                stats,
            })
        }
    }
}

fn record_plan(stats: &mut ExecutionStats, segment_name: &str, kind: planner::PlanKind) {
    match kind {
        planner::PlanKind::MetadataOnly => stats.num_segments_metadata_only += 1,
        planner::PlanKind::StarTree => stats.num_segments_star_tree += 1,
        planner::PlanKind::Raw => stats.num_segments_raw += 1,
    }
    stats
        .segment_plans
        .push((segment_name.to_string(), kind.as_str().to_string()));
}

fn execute_star_tree(
    segment: &ImmutableSegment,
    tree: &StarTree,
    query: &Query,
    filters: &[pinot_startree::DimFilter],
    group_dims: &[usize],
    mut stats: ExecutionStats,
) -> Result<IntermediateResult> {
    let result = tree.execute(filters, group_dims);
    stats.num_docs_scanned = result.preagg_docs_scanned;
    stats.raw_docs_equivalent = result.raw_docs_matched;

    let aggs = query.aggregations();
    // Map each aggregation to its tree-metric index (None for COUNT(*)).
    let metric_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| a.column.as_deref().and_then(|c| tree.metric_index(c)))
        .collect();

    let make_states = |agg_values: &pinot_startree::AggValues| -> Result<Vec<AggState>> {
        aggs.iter()
            .zip(&metric_idx)
            .map(|(a, mi)| {
                let mut s = AggState::new(a.function);
                match mi {
                    Some(i) => s.accept_preaggregated(
                        agg_values.count,
                        agg_values.sums[*i],
                        agg_values.mins[*i],
                        agg_values.maxs[*i],
                    )?,
                    None => s.accept_preaggregated(agg_values.count, 0.0, 0.0, 0.0)?,
                }
                Ok(s)
            })
            .collect()
    };

    if group_dims.is_empty() {
        let total = result
            .groups
            .first()
            .map(|(_, a)| a.clone())
            .unwrap_or_else(|| pinot_startree::AggValues::empty(tree.metrics().len()));
        let states = make_states(&total)?;
        return Ok(IntermediateResult {
            payload: ResultPayload::Aggregation(states),
            stats,
        });
    }

    // Translate group keys from dict-id space to values.
    let dim_cols: Vec<&ColumnData> = group_dims
        .iter()
        .map(|&d| segment.column(&tree.dimensions()[d]))
        .collect::<Result<_>>()?;
    let mut out: HashMap<GroupKey, Vec<AggState>> = HashMap::with_capacity(result.groups.len());
    for (ids, agg_values) in &result.groups {
        if agg_values.is_empty() {
            continue;
        }
        let key: GroupKey = ids
            .iter()
            .zip(&dim_cols)
            .map(|(id, col)| GroupValue::from_value(&col.dictionary.value_of(*id)))
            .collect();
        out.insert(key, make_states(agg_values)?);
    }
    Ok(IntermediateResult {
        payload: ResultPayload::GroupBy(out),
        stats,
    })
}

fn aggregate_selection(
    segment: &ImmutableSegment,
    aggs: &[AggregateExpr],
    selection: &DocSelection,
    stats: &mut ExecutionStats,
) -> Result<Vec<AggState>> {
    let mut states: Vec<AggState> = aggs.iter().map(|a| AggState::new(a.function)).collect();
    let cols: Vec<Option<&ColumnData>> = aggs
        .iter()
        .map(|a| a.column.as_deref().map(|c| segment.column(c)).transpose())
        .collect::<Result<_>>()?;
    let mut entries = 0u64;
    selection.for_each(|doc| {
        for (state, col) in states.iter_mut().zip(&cols) {
            match col {
                Some(col) => {
                    entries += 1;
                    if matches!(state, AggState::Distinct(_)) {
                        state.accept_value(&col.dictionary.value_of(col.dict_id(doc)));
                    } else if let Some(x) = col.numeric(doc) {
                        state.accept_numeric(x);
                    }
                }
                None => state.accept_numeric(0.0), // COUNT(*)
            }
        }
    });
    stats.num_entries_scanned_post_filter += entries;
    Ok(states)
}

fn group_by_selection(
    segment: &ImmutableSegment,
    aggs: &[AggregateExpr],
    group_by: &[String],
    selection: &DocSelection,
    stats: &mut ExecutionStats,
) -> Result<HashMap<GroupKey, Vec<AggState>>> {
    let group_cols: Vec<&ColumnData> = group_by
        .iter()
        .map(|c| segment.column(c))
        .collect::<Result<_>>()?;
    let agg_cols: Vec<Option<&ColumnData>> = aggs
        .iter()
        .map(|a| a.column.as_deref().map(|c| segment.column(c)).transpose())
        .collect::<Result<_>>()?;

    let mut groups: HashMap<GroupKey, Vec<AggState>> = HashMap::new();
    let mut entries = 0u64;
    let mut scratch_ids = Vec::new();
    selection.for_each(|doc| {
        // Multi-value group columns contribute one key per element
        // (cartesian across multiple MV columns).
        let mut keys: Vec<GroupKey> = vec![GroupKey::new()];
        for col in &group_cols {
            entries += 1;
            if col.forward.is_single_value() {
                let v = col.dictionary.value_of(col.dict_id(doc));
                let gv = GroupValue::from_value(&v);
                for k in &mut keys {
                    k.push(gv.clone());
                }
            } else {
                col.forward.get_multi(doc, &mut scratch_ids);
                let mut expanded = Vec::with_capacity(keys.len() * scratch_ids.len().max(1));
                for k in &keys {
                    for &id in &scratch_ids {
                        let mut nk = k.clone();
                        nk.push(GroupValue::from_value(&col.dictionary.value_of(id)));
                        expanded.push(nk);
                    }
                }
                keys = expanded;
            }
        }
        for key in keys {
            let states = groups
                .entry(key)
                .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.function)).collect());
            for (state, col) in states.iter_mut().zip(&agg_cols) {
                match col {
                    Some(col) => {
                        entries += 1;
                        if matches!(state, AggState::Distinct(_)) {
                            state.accept_value(&col.dictionary.value_of(col.dict_id(doc)));
                        } else if let Some(x) = col.numeric(doc) {
                            state.accept_numeric(x);
                        }
                    }
                    None => state.accept_numeric(0.0),
                }
            }
        }
    });
    stats.num_entries_scanned_post_filter += entries;
    Ok(groups)
}

fn select_rows(
    segment: &ImmutableSegment,
    columns: &[String],
    selection: &DocSelection,
    limit: usize,
    stats: &mut ExecutionStats,
) -> Result<Vec<Vec<Value>>> {
    let cols: Vec<&ColumnData> = columns
        .iter()
        .map(|c| segment.column(c))
        .collect::<Result<_>>()?;
    let mut rows = Vec::new();
    selection.for_each(|doc| {
        if rows.len() >= limit {
            return;
        }
        rows.push(cols.iter().map(|c| c.value(doc)).collect());
    });
    stats.num_entries_scanned_post_filter += (rows.len() * columns.len()) as u64;
    Ok(rows)
}
