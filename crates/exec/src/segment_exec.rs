//! Executing one query against one segment.

use crate::aggstate::AggState;
use crate::batch::{self, ExecOptions, KernelStats};
use crate::key::{GroupKey, GroupValue};
use crate::morsel;
use crate::planner;
use crate::selection::DocSelection;
use pinot_common::profile::ProfileNode;
use pinot_common::query::ExecutionStats;
use pinot_common::{PinotError, Result, Value};
use pinot_pql::{AggregateExpr, Query, SelectList};
use pinot_segment::column::ColumnData;
use pinot_segment::ImmutableSegment;
use pinot_startree::StarTree;
use std::collections::HashMap;
use std::sync::Arc;

/// A query-ready segment: the immutable data plus its optional star-tree.
#[derive(Clone)]
pub struct SegmentHandle {
    pub segment: Arc<ImmutableSegment>,
    pub star_tree: Option<Arc<StarTree>>,
    /// Segment name shared as `Arc<str>` so profiled executions label
    /// their nodes without allocating per query.
    pub name: Arc<str>,
}

impl SegmentHandle {
    pub fn new(segment: Arc<ImmutableSegment>) -> SegmentHandle {
        SegmentHandle {
            name: segment.name().into(),
            segment,
            star_tree: None,
        }
    }

    pub fn with_star_tree(mut self, tree: Arc<StarTree>) -> SegmentHandle {
        self.star_tree = Some(tree);
        self
    }
}

/// Partial result produced by a segment (and merged across segments and
/// servers). The same shape flows server → broker.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultPayload {
    /// Ungrouped aggregation states, one per aggregation expression.
    Aggregation(Vec<AggState>),
    /// Grouped aggregation states.
    GroupBy(HashMap<GroupKey, Vec<AggState>>),
    /// Projected rows.
    Selection {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
}

/// A partial result plus its execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct IntermediateResult {
    pub payload: ResultPayload,
    pub stats: ExecutionStats,
    /// Per-operator profile tree, present only when
    /// [`ExecOptions::profile`] was set. Never affects `payload`/`stats`.
    pub profile: Option<ProfileNode>,
}

impl IntermediateResult {
    /// Identity element matching the query shape.
    pub fn empty_for(query: &Query) -> IntermediateResult {
        let payload = match &query.select {
            SelectList::Aggregations(aggs) if query.group_by.is_empty() => {
                ResultPayload::Aggregation(aggs.iter().map(|a| AggState::new(a.function)).collect())
            }
            SelectList::Aggregations(_) => ResultPayload::GroupBy(HashMap::new()),
            SelectList::Projections(cols) => ResultPayload::Selection {
                columns: cols.clone(),
                rows: Vec::new(),
            },
            SelectList::Star => ResultPayload::Selection {
                columns: Vec::new(),
                rows: Vec::new(),
            },
        };
        IntermediateResult {
            payload,
            stats: ExecutionStats::default(),
            profile: None,
        }
    }
}

/// Execute a query on one segment with default options (the
/// `PINOT_EXEC_BATCH` env decides between the batched and row paths).
pub fn execute_on_segment(handle: &SegmentHandle, query: &Query) -> Result<IntermediateResult> {
    execute_on_segment_with(handle, query, &ExecOptions::default())
}

/// Execute a query on one segment, producing a partial result.
pub fn execute_on_segment_with(
    handle: &SegmentHandle,
    query: &Query,
    opts: &ExecOptions,
) -> Result<IntermediateResult> {
    let segment = &handle.segment;
    let mut stats = ExecutionStats {
        num_segments_queried: 1,
        num_segments_processed: 1,
        total_docs: segment.num_docs() as u64,
        ..Default::default()
    };

    // Profiling clock: `None` on the unprofiled path, which therefore
    // takes no extra timestamps and returns byte-identical results.
    let seg_start = opts.profile.then(std::time::Instant::now);

    // Validate referenced columns up front for a clean error.
    for c in query.referenced_columns() {
        segment.column(c)?;
    }

    // 1. Metadata-only plan.
    if let Some(values) = planner::metadata_only_plan(segment, query) {
        record_plan(&mut stats, segment.name(), planner::PlanKind::MetadataOnly);
        let aggs = query.aggregations();
        let mut states = Vec::with_capacity(aggs.len());
        for (a, v) in aggs.iter().zip(values) {
            let mut s = AggState::new(a.function);
            match (&mut s, v) {
                (AggState::Count(n), Value::Long(x)) => *n = x as u64,
                (AggState::Min(m), Value::Double(x)) => *m = x,
                (AggState::Max(m), Value::Double(x)) => *m = x,
                _ => {
                    return Err(PinotError::Internal(
                        "metadata plan produced unexpected value shape".into(),
                    ))
                }
            }
            states.push(s);
        }
        let profile = seg_start.map(|t| {
            let ns = t.elapsed().as_nanos() as u64;
            let mut child = ProfileNode::new("metadata_only");
            child.elapsed_ns = ns;
            let mut seg =
                segment_profile_node(Arc::clone(&handle.name), planner::PlanKind::MetadataOnly);
            seg.docs_in = stats.total_docs;
            seg.elapsed_ns = ns;
            seg.children.push(child);
            seg
        });
        return Ok(IntermediateResult {
            payload: ResultPayload::Aggregation(states),
            stats,
            profile,
        });
    }

    // 2. Star-tree plan.
    if let Some((filters, group_dims)) = planner::try_star_tree(handle, query) {
        let tree = handle.star_tree.as_ref().expect("checked by try_star_tree");
        record_plan(&mut stats, segment.name(), planner::PlanKind::StarTree);
        let mut result = execute_star_tree(segment, tree, query, &filters, &group_dims, stats)?;
        result.profile = seg_start.map(|t| {
            let ns = t.elapsed().as_nanos() as u64;
            let mut child = ProfileNode::new("star_tree");
            // The star-tree scans preaggregated records standing in for
            // `raw_docs_equivalent` raw documents.
            child.docs_in = result.stats.raw_docs_equivalent;
            child.docs_out = result.stats.num_docs_scanned;
            child.elapsed_ns = ns;
            let mut seg =
                segment_profile_node(Arc::clone(&handle.name), planner::PlanKind::StarTree);
            seg.docs_in = result.stats.total_docs;
            seg.docs_out = result.stats.num_docs_scanned;
            seg.elapsed_ns = ns;
            seg.children.push(child);
            seg
        });
        return Ok(result);
    }

    // 3. Raw plan: filter then aggregate / group / select. The batched
    // kernels handle what they can; anything else (multi-value columns,
    // over-wide group keys) falls back to the row path per operator.
    record_plan(&mut stats, segment.name(), planner::PlanKind::Raw);
    let batch = opts.batch_enabled();
    let filter_start = opts.profile.then(std::time::Instant::now);
    // Per-conjunct measurements (chosen path, estimated vs actual docs)
    // are collected only for EXPLAIN ANALYZE; plain profiled execution
    // skips the report to stay within its overhead budget.
    let conjuncts = (opts.profile && opts.analyze).then(|| std::cell::RefCell::new(Vec::new()));
    let fctx = planner::FilterCtx {
        batch,
        mode: opts.planner_mode(),
        cost_ordered: true,
        obs: opts.obs.as_deref(),
        report: conjuncts.as_ref(),
    };
    let selection =
        planner::evaluate_filter_ctx(segment, query.filter.as_ref(), &mut stats, &fctx)?;
    stats.num_docs_scanned = selection.count();

    let mut kstats = KernelStats::default();
    // `scan_start` doubles as the filter phase's end boundary, so the
    // profiled path takes no extra timestamp between filter and scan.
    let scan_start = std::time::Instant::now();
    let filter_ns = filter_start.map(|t| scan_start.duration_since(t).as_nanos() as u64);
    // Resolve columns and choose the kernel once; morsels reuse the plan.
    let plan = ScanPlan::resolve(segment, query, batch)?;
    let batch_kernel = plan.batch_kernel();
    // Morsel-driven scan (ISSUE 8): the partition depends only on the
    // selection and the morsel size, and partials merge in ascending
    // morsel order — so whether the morsels run inline or as pool tasks
    // (the cost gate's call), the bytes are identical. Selections of one
    // morsel or fewer take the direct path below, unchanged.
    let morsels = morsel::split_selection(&selection, opts.morsel_docs());
    let payload = if morsels.len() > 1 {
        let part = morsel::execute_morsels(
            &morsels,
            stats.num_docs_scanned,
            plan.cols_touched(),
            |m| {
                let mut mstats = ExecutionStats::default();
                let mut mk = KernelStats::default();
                let payload = plan.run(m, &mut mstats, &mut mk);
                morsel::MorselPartial {
                    payload,
                    entries: mstats.num_entries_scanned_post_filter,
                    blocks: mk.blocks,
                    docs: mk.docs,
                }
            },
            crate::merge::merge_payload,
            opts,
            opts.obs.as_deref(),
        )?;
        stats.num_entries_scanned_post_filter += part.entries;
        kstats.blocks += part.blocks;
        kstats.docs += part.docs;
        let mut payload = part.payload;
        if let ScanPlan::Select { limit, .. } = &plan {
            // Each morsel stops at the limit on its own; the ordered
            // concatenation re-applies it once globally.
            if let ResultPayload::Selection { rows, .. } = &mut payload {
                rows.truncate(*limit);
            }
        }
        payload
    } else {
        plan.run(&selection, &mut stats, &mut kstats)
    };
    let scan_ns = scan_start.elapsed().as_nanos() as u64;
    if let Some(obs) = &opts.obs {
        kstats.flush(obs, batch, scan_ns);
    }
    let profile = seg_start.map(|t| {
        let (scan_op, docs_produced) = match &payload {
            ResultPayload::Aggregation(states) => ("aggregate", states.len() as u64),
            ResultPayload::GroupBy(groups) => ("group_by", groups.len() as u64),
            ResultPayload::Selection { rows, .. } => ("select", rows.len() as u64),
        };
        let mut filter = ProfileNode::new("filter");
        filter.docs_in = stats.total_docs;
        filter.docs_out = stats.num_docs_scanned;
        filter.elapsed_ns = filter_ns.unwrap_or(0);
        // One child per evaluated conjunct leaf: docs_in is the cost
        // model's estimate, docs_out the measured match count, so the
        // rendered `docs=est→actual` reads as estimated vs measured.
        if let Some(report) = &conjuncts {
            for m in report.take() {
                let mut c = ProfileNode::named("conjunct", m.label);
                c.docs_in = m.est_docs;
                c.docs_out = m.actual_docs;
                filter.children.push(c);
            }
        }
        let mut scan = ProfileNode::new(scan_op);
        scan.kernel = Some(if batch_kernel { "batch" } else { "row" });
        scan.docs_in = stats.num_docs_scanned;
        scan.docs_out = docs_produced;
        scan.blocks_decoded = kstats.blocks;
        scan.elapsed_ns = scan_ns;
        let mut seg = segment_profile_node(Arc::clone(&handle.name), planner::PlanKind::Raw);
        seg.docs_in = stats.total_docs;
        seg.docs_out = stats.num_docs_scanned;
        seg.elapsed_ns = t.elapsed().as_nanos() as u64;
        seg.children = vec![filter, scan];
        seg
    });
    Ok(IntermediateResult {
        payload,
        stats,
        profile,
    })
}

/// A resolved raw-scan plan: columns looked up and the kernel chosen
/// once per segment, then reused for every morsel of the selection. All
/// kernels take a `&DocSelection`, which is what lets morsel splitting
/// happen *above* the kernel choice — batch and row paths morselize
/// identically.
enum ScanPlan<'a> {
    Aggregate {
        aggs: &'a [AggregateExpr],
        cols: Vec<Option<&'a ColumnData>>,
        batch: bool,
    },
    GroupBy {
        aggs: &'a [AggregateExpr],
        group_cols: Vec<&'a ColumnData>,
        agg_cols: Vec<Option<&'a ColumnData>>,
        layout: Option<batch::PackedKeyLayout>,
    },
    Select {
        columns: Vec<String>,
        cols: Vec<&'a ColumnData>,
        limit: usize,
        batch: bool,
    },
}

impl<'a> ScanPlan<'a> {
    fn resolve(
        segment: &'a ImmutableSegment,
        query: &'a Query,
        batch: bool,
    ) -> Result<ScanPlan<'a>> {
        Ok(match &query.select {
            SelectList::Aggregations(aggs) if query.group_by.is_empty() => {
                let cols: Vec<Option<&ColumnData>> = aggs
                    .iter()
                    .map(|a| a.column.as_deref().map(|c| segment.column(c)).transpose())
                    .collect::<Result<_>>()?;
                let batch = batch && batch::aggregate_eligible(&cols);
                ScanPlan::Aggregate { aggs, cols, batch }
            }
            SelectList::Aggregations(aggs) => {
                let group_cols: Vec<&ColumnData> = query
                    .group_by
                    .iter()
                    .map(|c| segment.column(c))
                    .collect::<Result<_>>()?;
                let agg_cols: Vec<Option<&ColumnData>> = aggs
                    .iter()
                    .map(|a| a.column.as_deref().map(|c| segment.column(c)).transpose())
                    .collect::<Result<_>>()?;
                let layout = batch
                    .then(|| batch::group_by_layout(aggs, &group_cols, &agg_cols))
                    .flatten();
                ScanPlan::GroupBy {
                    aggs,
                    group_cols,
                    agg_cols,
                    layout,
                }
            }
            SelectList::Projections(_) | SelectList::Star => {
                let columns: Vec<String> = match &query.select {
                    SelectList::Projections(cols) => cols.clone(),
                    _ => segment
                        .schema()
                        .fields()
                        .iter()
                        .map(|f| f.name.clone())
                        .collect(),
                };
                let cols: Vec<&ColumnData> = columns
                    .iter()
                    .map(|c| segment.column(c))
                    .collect::<Result<_>>()?;
                let limit = query.effective_limit();
                let batch = batch && batch::select_eligible(&cols);
                ScanPlan::Select {
                    columns,
                    cols,
                    limit,
                    batch,
                }
            }
        })
    }

    fn batch_kernel(&self) -> bool {
        match self {
            ScanPlan::Aggregate { batch, .. } => *batch,
            ScanPlan::GroupBy { layout, .. } => layout.is_some(),
            ScanPlan::Select { batch, .. } => *batch,
        }
    }

    /// Columns the scan reads per matching doc — the cost model's second
    /// factor.
    fn cols_touched(&self) -> u64 {
        let n = match self {
            ScanPlan::Aggregate { cols, .. } => cols.iter().flatten().count(),
            ScanPlan::GroupBy {
                group_cols,
                agg_cols,
                ..
            } => group_cols.len() + agg_cols.iter().flatten().count(),
            ScanPlan::Select { cols, .. } => cols.len(),
        };
        n.max(1) as u64
    }

    /// Run the scan over one (sub-)selection. Whole-selection execution
    /// and per-morsel execution both come through here.
    fn run(
        &self,
        selection: &DocSelection,
        stats: &mut ExecutionStats,
        kstats: &mut KernelStats,
    ) -> ResultPayload {
        match self {
            ScanPlan::Aggregate { aggs, cols, batch } => {
                let states = if *batch {
                    batch::aggregate_selection_batch(aggs, cols, selection, stats, kstats)
                } else {
                    aggregate_selection(aggs, cols, selection, stats)
                };
                ResultPayload::Aggregation(states)
            }
            ScanPlan::GroupBy {
                aggs,
                group_cols,
                agg_cols,
                layout,
            } => {
                let groups = match layout {
                    Some(layout) => batch::group_by_selection_batch(
                        aggs, group_cols, agg_cols, layout, selection, stats, kstats,
                    ),
                    None => group_by_selection(aggs, group_cols, agg_cols, selection, stats),
                };
                ResultPayload::GroupBy(groups)
            }
            ScanPlan::Select {
                columns,
                cols,
                limit,
                batch,
            } => {
                let rows = if *batch {
                    batch::select_rows_batch(cols, selection, *limit, stats, kstats)
                } else {
                    select_rows(cols, selection, *limit, stats)
                };
                ResultPayload::Selection {
                    columns: columns.clone(),
                    rows,
                }
            }
        }
    }
}

/// Root profile node for one segment execution.
fn segment_profile_node(name: Arc<str>, kind: planner::PlanKind) -> ProfileNode {
    let mut seg = ProfileNode::named("segment", name);
    seg.plan_kind = Some(kind.as_str());
    seg.segments = 1;
    seg
}

fn record_plan(stats: &mut ExecutionStats, segment_name: &str, kind: planner::PlanKind) {
    match kind {
        planner::PlanKind::MetadataOnly => stats.num_segments_metadata_only += 1,
        planner::PlanKind::StarTree => stats.num_segments_star_tree += 1,
        planner::PlanKind::Raw => stats.num_segments_raw += 1,
    }
    stats
        .segment_plans
        .push((segment_name.to_string(), kind.as_str().to_string()));
}

fn execute_star_tree(
    segment: &ImmutableSegment,
    tree: &StarTree,
    query: &Query,
    filters: &[pinot_startree::DimFilter],
    group_dims: &[usize],
    mut stats: ExecutionStats,
) -> Result<IntermediateResult> {
    let result = tree.execute(filters, group_dims);
    stats.num_docs_scanned = result.preagg_docs_scanned;
    stats.raw_docs_equivalent = result.raw_docs_matched;

    let aggs = query.aggregations();
    // Map each aggregation to its tree-metric index (None for COUNT(*)).
    let metric_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| a.column.as_deref().and_then(|c| tree.metric_index(c)))
        .collect();

    let make_states = |agg_values: &pinot_startree::AggValues| -> Result<Vec<AggState>> {
        aggs.iter()
            .zip(&metric_idx)
            .map(|(a, mi)| {
                let mut s = AggState::new(a.function);
                match mi {
                    Some(i) => s.accept_preaggregated(
                        agg_values.count,
                        agg_values.sums[*i],
                        agg_values.mins[*i],
                        agg_values.maxs[*i],
                    )?,
                    None => s.accept_preaggregated(agg_values.count, 0.0, 0.0, 0.0)?,
                }
                Ok(s)
            })
            .collect()
    };

    if group_dims.is_empty() {
        let total = result
            .groups
            .first()
            .map(|(_, a)| a.clone())
            .unwrap_or_else(|| pinot_startree::AggValues::empty(tree.metrics().len()));
        let states = make_states(&total)?;
        return Ok(IntermediateResult {
            payload: ResultPayload::Aggregation(states),
            stats,
            profile: None,
        });
    }

    // Translate group keys from dict-id space to values.
    let dim_cols: Vec<&ColumnData> = group_dims
        .iter()
        .map(|&d| segment.column(&tree.dimensions()[d]))
        .collect::<Result<_>>()?;
    let mut out: HashMap<GroupKey, Vec<AggState>> = HashMap::with_capacity(result.groups.len());
    for (ids, agg_values) in &result.groups {
        if agg_values.is_empty() {
            continue;
        }
        let key: GroupKey = ids
            .iter()
            .zip(&dim_cols)
            .map(|(id, col)| GroupValue::from_value(&col.dictionary.value_of(*id)))
            .collect();
        out.insert(key, make_states(agg_values)?);
    }
    Ok(IntermediateResult {
        payload: ResultPayload::GroupBy(out),
        stats,
        profile: None,
    })
}

fn aggregate_selection(
    aggs: &[AggregateExpr],
    cols: &[Option<&ColumnData>],
    selection: &DocSelection,
    stats: &mut ExecutionStats,
) -> Vec<AggState> {
    let mut states: Vec<AggState> = aggs.iter().map(|a| AggState::new(a.function)).collect();
    let mut entries = 0u64;
    selection.for_each(|doc| {
        for (state, col) in states.iter_mut().zip(cols) {
            match col {
                Some(col) => {
                    entries += 1;
                    if matches!(state, AggState::Distinct(_)) {
                        state.accept_value(&col.dictionary.value_of(col.dict_id(doc)));
                    } else if let Some(x) = col.numeric(doc) {
                        state.accept_numeric(x);
                    }
                }
                None => state.accept_numeric(0.0), // COUNT(*)
            }
        }
    });
    stats.num_entries_scanned_post_filter += entries;
    states
}

fn group_by_selection(
    aggs: &[AggregateExpr],
    group_cols: &[&ColumnData],
    agg_cols: &[Option<&ColumnData>],
    selection: &DocSelection,
    stats: &mut ExecutionStats,
) -> HashMap<GroupKey, Vec<AggState>> {
    // Each (doc, column) read counts once into the scan stat — key
    // expansion re-uses the same read, so multi-value cartesian blowup
    // must not inflate it.
    let entries_per_doc =
        (group_cols.len() + agg_cols.iter().filter(|c| c.is_some()).count()) as u64;
    let mut groups: HashMap<GroupKey, Vec<AggState>> = HashMap::new();
    let mut entries = 0u64;
    let mut scratch_ids: Vec<pinot_segment::DictId> = Vec::new();
    // Scratch reused across docs: candidate keys, the expansion buffer,
    // and the per-element group values of the current MV column.
    let mut keys: Vec<GroupKey> = Vec::new();
    let mut expanded: Vec<GroupKey> = Vec::new();
    let mut elem_values: Vec<GroupValue> = Vec::new();
    selection.for_each(|doc| {
        entries += entries_per_doc;
        // Multi-value group columns contribute one key per element
        // (cartesian across multiple MV columns).
        keys.clear();
        keys.push(GroupKey::new());
        for col in group_cols {
            if col.forward.is_single_value() {
                let v = col.dictionary.value_of(col.dict_id(doc));
                let gv = GroupValue::from_value(&v);
                for k in &mut keys {
                    k.push(gv.clone());
                }
            } else {
                col.forward.get_multi(doc, &mut scratch_ids);
                elem_values.clear();
                elem_values.extend(
                    scratch_ids
                        .iter()
                        .map(|&id| GroupValue::from_value(&col.dictionary.value_of(id))),
                );
                expanded.clear();
                expanded.reserve(keys.len() * elem_values.len());
                for k in keys.drain(..) {
                    if let Some((last, rest)) = elem_values.split_last() {
                        for gv in rest {
                            let mut nk = k.clone();
                            nk.push(gv.clone());
                            expanded.push(nk);
                        }
                        // The final element takes ownership of the key.
                        let mut nk = k;
                        nk.push(last.clone());
                        expanded.push(nk);
                    }
                }
                std::mem::swap(&mut keys, &mut expanded);
            }
        }
        for key in keys.drain(..) {
            let states = groups
                .entry(key)
                .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.function)).collect());
            for (state, col) in states.iter_mut().zip(agg_cols) {
                match col {
                    Some(col) => {
                        if matches!(state, AggState::Distinct(_)) {
                            state.accept_value(&col.dictionary.value_of(col.dict_id(doc)));
                        } else if let Some(x) = col.numeric(doc) {
                            state.accept_numeric(x);
                        }
                    }
                    None => state.accept_numeric(0.0),
                }
            }
        }
    });
    stats.num_entries_scanned_post_filter += entries;
    groups
}

fn select_rows(
    cols: &[&ColumnData],
    selection: &DocSelection,
    limit: usize,
    stats: &mut ExecutionStats,
) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    selection.for_each(|doc| {
        if rows.len() >= limit {
            return;
        }
        rows.push(cols.iter().map(|c| c.value(doc)).collect());
    });
    stats.num_entries_scanned_post_filter += (rows.len() * cols.len()) as u64;
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_common::{DataType, FieldSpec, Record, Schema, Value};
    use pinot_pql::parse;
    use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
    use std::sync::Arc;

    fn mv_handle() -> SegmentHandle {
        let schema = Schema::new(
            "t",
            vec![
                FieldSpec::dimension("country", DataType::String),
                FieldSpec::multi_value_dimension("tags", DataType::String),
                FieldSpec::metric("m", DataType::Long),
            ],
        )
        .unwrap();
        let mut b = SegmentBuilder::new(schema, BuilderConfig::new("s", "t")).unwrap();
        let tag_sets: &[&[&str]] = &[&["a", "b", "c"], &["a"], &["b", "c"], &["a", "c"], &["b"]];
        for (i, tags) in tag_sets.iter().enumerate() {
            b.add(Record::new(vec![
                Value::from(if i % 2 == 0 { "us" } else { "de" }),
                Value::StringArray(tags.iter().map(|t| t.to_string()).collect()),
                Value::Long(i as i64),
            ]))
            .unwrap();
        }
        SegmentHandle::new(Arc::new(b.build().unwrap()))
    }

    fn run(handle: &SegmentHandle, pql: &str, batch: bool) -> IntermediateResult {
        let opts = ExecOptions {
            batch: Some(batch),
            ..ExecOptions::default()
        };
        execute_on_segment_with(handle, &parse(pql).unwrap(), &opts).unwrap()
    }

    /// Regression (ISSUE 4 satellite): `num_entries_scanned_post_filter`
    /// counts each (doc, column) read once. The old row path counted an
    /// entry per *expanded group key*, inflating MV group-bys by the
    /// per-doc key fan-out.
    #[test]
    fn mv_group_by_counts_entries_per_doc_not_per_expanded_key() {
        let handle = mv_handle();
        // 5 docs × (1 group column + 1 agg column) = 10 entries; the key
        // expansion (3+1+2+2+1 = 9 keys) must not leak into the count.
        for batch in [false, true] {
            let r = run(&handle, "SELECT SUM(m) FROM t GROUP BY tags", batch);
            assert_eq!(r.stats.num_entries_scanned_post_filter, 10, "batch={batch}");
        }
        // Two MV group columns fan out multiplicatively in keys but still
        // count one entry per (doc, column): 5 × (2 + 1) = 15.
        for batch in [false, true] {
            let r = run(
                &handle,
                "SELECT SUM(m) FROM t GROUP BY tags, country",
                batch,
            );
            assert_eq!(r.stats.num_entries_scanned_post_filter, 15, "batch={batch}");
        }
    }

    /// The packed-key batch kernel and the row path agree on results and
    /// stats for an SV group-by (where the batch layout actually engages).
    #[test]
    fn sv_group_by_batch_matches_row_path() {
        let handle = mv_handle();
        let pql = "SELECT SUM(m), COUNT(*) FROM t GROUP BY country";
        let b = run(&handle, pql, true);
        let r = run(&handle, pql, false);
        match (&b.payload, &r.payload) {
            (ResultPayload::GroupBy(bg), ResultPayload::GroupBy(rg)) => {
                assert_eq!(bg.len(), rg.len());
                for (k, states) in bg {
                    let other = rg.get(k).expect("group missing from row path");
                    for (s, o) in states.iter().zip(other) {
                        assert_eq!(s.finalize_f64(), o.finalize_f64());
                    }
                }
            }
            other => panic!("unexpected payloads: {other:?}"),
        }
        assert_eq!(
            b.stats.num_entries_scanned_post_filter,
            r.stats.num_entries_scanned_post_filter
        );
    }
}
