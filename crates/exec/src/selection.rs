//! Document selections and predicate compilation.
//!
//! A filter evaluates to a [`DocSelection`]: either a contiguous doc range
//! (sorted-column predicates, §4.2), a roaring bitmap (inverted-index
//! predicates), everything, or nothing. Leaf predicates first compile to an
//! [`IdMatcher`] — the predicate translated into the column's dictionary-id
//! space — which each physical operator then evaluates with the cheapest
//! structure available.

use pinot_bitmap::RoaringBitmap;
use pinot_common::{PinotError, Result};
use pinot_pql::{CmpOp, Predicate};
use pinot_segment::column::ColumnData;
use pinot_segment::{DictId, DocId, ImmutableSegment};

/// A leaf predicate compiled into dictionary-id space.
#[derive(Debug, Clone, PartialEq)]
pub struct IdMatcher {
    pub column: String,
    pub kind: MatchKind,
}

#[derive(Debug, Clone, PartialEq)]
pub enum MatchKind {
    /// Matches ids in `[lo, hi)` — equality is a 1-wide range. Because
    /// dictionaries are sorted, every comparison/BETWEEN compiles to this.
    Range(DictId, DictId),
    /// Matches an explicit sorted id set (IN predicates).
    Set(Vec<DictId>),
    /// Matches nothing in this segment (e.g. value absent from dictionary).
    Nothing,
}

impl IdMatcher {
    /// Compile one leaf predicate against a segment's dictionary.
    pub fn compile(segment: &ImmutableSegment, pred: &Predicate) -> Result<IdMatcher> {
        match pred {
            Predicate::Cmp { column, op, value } => {
                let col = segment.column(column)?;
                let dict = &col.dictionary;
                let kind = match op {
                    CmpOp::Eq => match dict.id_of(value) {
                        Some(id) => MatchKind::Range(id, id + 1),
                        None => MatchKind::Nothing,
                    },
                    // Ne is handled by the caller as Not(Eq).
                    CmpOp::Ne => {
                        return Err(PinotError::Internal(
                            "Ne must be rewritten before compilation".into(),
                        ))
                    }
                    CmpOp::Lt => {
                        let (lo, hi) = dict.id_range(None, Some(value));
                        // `<=` minus equality: shrink upper bound if the
                        // exact value exists.
                        let hi = match dict.id_of(value) {
                            Some(id) => id,
                            None => hi,
                        };
                        range_or_nothing(lo, hi)
                    }
                    CmpOp::Le => {
                        let (lo, hi) = dict.id_range(None, Some(value));
                        range_or_nothing(lo, hi)
                    }
                    CmpOp::Gt => {
                        let (lo, hi) = dict.id_range(Some(value), None);
                        let lo = match dict.id_of(value) {
                            Some(id) => id + 1,
                            None => lo,
                        };
                        range_or_nothing(lo, hi)
                    }
                    CmpOp::Ge => {
                        let (lo, hi) = dict.id_range(Some(value), None);
                        range_or_nothing(lo, hi)
                    }
                };
                Ok(IdMatcher {
                    column: column.clone(),
                    kind,
                })
            }
            Predicate::Between { column, low, high } => {
                let col = segment.column(column)?;
                let (lo, hi) = col.dictionary.id_range(Some(low), Some(high));
                Ok(IdMatcher {
                    column: column.clone(),
                    kind: range_or_nothing(lo, hi),
                })
            }
            Predicate::In {
                column,
                values,
                negated,
            } => {
                if *negated {
                    return Err(PinotError::Internal(
                        "NOT IN must be rewritten before compilation".into(),
                    ));
                }
                let col = segment.column(column)?;
                let mut ids: Vec<DictId> = values
                    .iter()
                    .filter_map(|v| col.dictionary.id_of(v))
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                Ok(IdMatcher {
                    column: column.clone(),
                    kind: if ids.is_empty() {
                        MatchKind::Nothing
                    } else {
                        MatchKind::Set(ids)
                    },
                })
            }
            _ => Err(PinotError::Internal(
                "IdMatcher::compile expects a leaf predicate".into(),
            )),
        }
    }

    /// Does this doc match? Used by the scan fallback; multi-value columns
    /// match when any element matches.
    #[inline]
    pub fn matches_doc(&self, col: &ColumnData, doc: DocId) -> bool {
        match &self.kind {
            MatchKind::Range(lo, hi) => col.forward.doc_in_range(doc, *lo, *hi),
            MatchKind::Set(ids) => ids.iter().any(|&id| col.forward.doc_contains(doc, id)),
            MatchKind::Nothing => false,
        }
    }
}

fn range_or_nothing(lo: DictId, hi: DictId) -> MatchKind {
    if lo >= hi {
        MatchKind::Nothing
    } else {
        MatchKind::Range(lo, hi)
    }
}

/// Max docs per [`DocBlock`] — matches `pinot_segment::bitpack::BLOCK`
/// so one block decodes into one scratch buffer.
pub const BLOCK_SIZE: usize = pinot_segment::bitpack::BLOCK;

/// Documents handed to a block kernel in one call: a contiguous run
/// (decoded straight off the forward index) or an explicit ascending id
/// list (bitmap selections). At most [`BLOCK_SIZE`] docs either way.
#[derive(Debug, Clone, Copy)]
pub enum DocBlock<'a> {
    /// Contiguous docs `[start, end)`.
    Run(DocId, DocId),
    /// Ascending doc ids.
    Ids(&'a [DocId]),
}

impl DocBlock<'_> {
    pub fn len(&self) -> usize {
        match self {
            DocBlock::Run(s, e) => (*e - *s) as usize,
            DocBlock::Ids(ids) => ids.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn each_run_block(start: DocId, end: DocId, f: &mut impl FnMut(DocBlock<'_>)) {
    let mut s = start;
    while s < end {
        let e = s.saturating_add(BLOCK_SIZE as DocId).min(end);
        f(DocBlock::Run(s, e));
        s = e;
    }
}

/// The matched document set of a (sub-)filter.
#[derive(Debug, Clone, PartialEq)]
pub enum DocSelection {
    /// All docs in `[0, n)` — no filter.
    All(DocId),
    /// Contiguous docs `[start, end)` — sorted-column predicates.
    Range(DocId, DocId),
    /// Arbitrary doc set.
    Bitmap(RoaringBitmap),
    /// Nothing matches.
    Empty,
}

impl DocSelection {
    pub fn count(&self) -> u64 {
        match self {
            DocSelection::All(n) => *n as u64,
            DocSelection::Range(s, e) => (*e - *s) as u64,
            DocSelection::Bitmap(bm) => bm.len(),
            DocSelection::Empty => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Materialize as a bitmap (for mixed combinations).
    pub fn to_bitmap(&self) -> RoaringBitmap {
        match self {
            DocSelection::All(n) => RoaringBitmap::from_range(0, *n),
            DocSelection::Range(s, e) => RoaringBitmap::from_range(*s, *e),
            DocSelection::Bitmap(bm) => bm.clone(),
            DocSelection::Empty => RoaringBitmap::new(),
        }
    }

    /// Intersect with another selection. Range∧Range stays a range — the
    /// paper's "pass the column range on to subsequent operators".
    pub fn and(&self, other: &DocSelection) -> DocSelection {
        use DocSelection::*;
        match (self, other) {
            (Empty, _) | (_, Empty) => Empty,
            (All(_), x) => x.clone(),
            (x, All(_)) => x.clone(),
            (Range(a, b), Range(c, d)) => {
                let (s, e) = ((*a).max(*c), (*b).min(*d));
                if s >= e {
                    Empty
                } else {
                    Range(s, e)
                }
            }
            (Range(a, b), Bitmap(bm)) | (Bitmap(bm), Range(a, b)) => {
                let masked = bm.and(&RoaringBitmap::from_range(*a, *b));
                if masked.is_empty() {
                    Empty
                } else {
                    Bitmap(masked)
                }
            }
            (Bitmap(x), Bitmap(y)) => {
                let z = x.and(y);
                if z.is_empty() {
                    Empty
                } else {
                    Bitmap(z)
                }
            }
        }
    }

    /// Union with another selection.
    pub fn or(&self, other: &DocSelection) -> DocSelection {
        use DocSelection::*;
        match (self, other) {
            (Empty, x) | (x, Empty) => x.clone(),
            (All(n), _) | (_, All(n)) => All(*n),
            (Range(a, b), Range(c, d)) if *c <= *b && *a <= *d => Range((*a).min(*c), (*b).max(*d)),
            (x, y) => Bitmap(x.to_bitmap().or(&y.to_bitmap())),
        }
    }

    /// Complement within `[0, num_docs)`.
    pub fn not(&self, num_docs: DocId) -> DocSelection {
        use DocSelection::*;
        match self {
            Empty => All(num_docs),
            All(_) => Empty,
            Range(s, e) => {
                if *s == 0 {
                    if *e >= num_docs {
                        Empty
                    } else {
                        Range(*e, num_docs)
                    }
                } else if *e >= num_docs {
                    Range(0, *s)
                } else {
                    Bitmap(
                        RoaringBitmap::from_range(0, *s)
                            .or(&RoaringBitmap::from_range(*e, num_docs)),
                    )
                }
            }
            Bitmap(bm) => {
                let c = bm.not(num_docs);
                if c.is_empty() {
                    Empty
                } else {
                    Bitmap(c)
                }
            }
        }
    }

    /// Iterate matching doc ids in ascending order.
    pub fn for_each(&self, mut f: impl FnMut(DocId)) {
        match self {
            DocSelection::All(n) => {
                for d in 0..*n {
                    f(d);
                }
            }
            DocSelection::Range(s, e) => {
                for d in *s..*e {
                    f(d);
                }
            }
            DocSelection::Bitmap(bm) => {
                for d in bm.iter() {
                    f(d);
                }
            }
            DocSelection::Empty => {}
        }
    }

    /// Iterate matching docs as blocks of at most [`BLOCK_SIZE`], in the
    /// same ascending doc order as [`DocSelection::for_each`]: ranges
    /// yield contiguous runs, bitmap selections drain their containers
    /// in bulk and yield sorted id slices.
    pub fn for_each_block(&self, mut f: impl FnMut(DocBlock<'_>)) {
        match self {
            DocSelection::All(n) => each_run_block(0, *n, &mut f),
            DocSelection::Range(s, e) => each_run_block(*s, *e, &mut f),
            DocSelection::Bitmap(bm) => {
                let mut scratch = Vec::new();
                bm.for_each_batch(&mut scratch, |ids| {
                    for chunk in ids.chunks(BLOCK_SIZE) {
                        f(DocBlock::Ids(chunk));
                    }
                });
            }
            DocSelection::Empty => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_common::{DataType, FieldSpec, Record, Schema, Value};
    use pinot_segment::builder::{BuilderConfig, SegmentBuilder};

    fn segment() -> ImmutableSegment {
        let schema = Schema::new(
            "t",
            vec![
                FieldSpec::dimension("k", DataType::Long),
                FieldSpec::dimension("s", DataType::String),
            ],
        )
        .unwrap();
        let mut b = SegmentBuilder::new(schema, BuilderConfig::new("x", "t")).unwrap();
        for (k, s) in [(10i64, "a"), (20, "b"), (30, "c"), (40, "b")] {
            b.add(Record::new(vec![Value::Long(k), Value::from(s)]))
                .unwrap();
        }
        b.build().unwrap()
    }

    fn cmp(col: &str, op: CmpOp, v: Value) -> Predicate {
        Predicate::Cmp {
            column: col.into(),
            op,
            value: v,
        }
    }

    #[test]
    fn compile_comparisons() {
        let seg = segment();
        // dict for k: 10,20,30,40 → ids 0..4
        let m = IdMatcher::compile(&seg, &cmp("k", CmpOp::Eq, Value::Long(20))).unwrap();
        assert_eq!(m.kind, MatchKind::Range(1, 2));
        let m = IdMatcher::compile(&seg, &cmp("k", CmpOp::Lt, Value::Long(30))).unwrap();
        assert_eq!(m.kind, MatchKind::Range(0, 2));
        let m = IdMatcher::compile(&seg, &cmp("k", CmpOp::Le, Value::Long(30))).unwrap();
        assert_eq!(m.kind, MatchKind::Range(0, 3));
        let m = IdMatcher::compile(&seg, &cmp("k", CmpOp::Gt, Value::Long(20))).unwrap();
        assert_eq!(m.kind, MatchKind::Range(2, 4));
        let m = IdMatcher::compile(&seg, &cmp("k", CmpOp::Ge, Value::Long(20))).unwrap();
        assert_eq!(m.kind, MatchKind::Range(1, 4));
        // Bounds not present in the dictionary still work.
        let m = IdMatcher::compile(&seg, &cmp("k", CmpOp::Lt, Value::Long(25))).unwrap();
        assert_eq!(m.kind, MatchKind::Range(0, 2));
        let m = IdMatcher::compile(&seg, &cmp("k", CmpOp::Eq, Value::Long(25))).unwrap();
        assert_eq!(m.kind, MatchKind::Nothing);
    }

    #[test]
    fn compile_between_and_in() {
        let seg = segment();
        let m = IdMatcher::compile(
            &seg,
            &Predicate::Between {
                column: "k".into(),
                low: Value::Long(15),
                high: Value::Long(35),
            },
        )
        .unwrap();
        assert_eq!(m.kind, MatchKind::Range(1, 3));
        let m = IdMatcher::compile(
            &seg,
            &Predicate::In {
                column: "s".into(),
                values: vec![Value::from("b"), Value::from("zz"), Value::from("a")],
                negated: false,
            },
        )
        .unwrap();
        assert_eq!(m.kind, MatchKind::Set(vec![0, 1])); // a=0, b=1
    }

    #[test]
    fn matcher_matches_docs() {
        let seg = segment();
        let col = seg.column("s").unwrap();
        let m = IdMatcher::compile(&seg, &cmp("s", CmpOp::Eq, Value::from("b"))).unwrap();
        let matched: Vec<DocId> = (0..4).filter(|&d| m.matches_doc(col, d)).collect();
        assert_eq!(matched, vec![1, 3]);
    }

    #[test]
    fn selection_algebra() {
        use DocSelection::*;
        let r1 = Range(2, 8);
        let r2 = Range(5, 12);
        assert_eq!(r1.and(&r2), Range(5, 8));
        assert_eq!(r1.or(&r2), Range(2, 12));
        let disjoint = Range(20, 25);
        assert_eq!(r1.and(&disjoint), Empty);
        match r1.or(&disjoint) {
            Bitmap(bm) => assert_eq!(bm.len(), 6 + 5),
            other => panic!("{other:?}"),
        }
        let bm = Bitmap(RoaringBitmap::from_iter([3u32, 6, 9]));
        assert_eq!(r1.and(&bm).to_bitmap().to_vec(), vec![3, 6]);
        assert_eq!(All(10).and(&r1), r1);
        assert_eq!(Empty.or(&r1), r1);
        assert_eq!(r1.count(), 6);
    }

    #[test]
    fn selection_not() {
        use DocSelection::*;
        assert_eq!(Range(0, 4).not(10), Range(4, 10));
        assert_eq!(Range(4, 10).not(10), Range(0, 4));
        assert_eq!(All(10).not(10), Empty);
        assert_eq!(Empty.not(10), All(10));
        match Range(3, 5).not(10) {
            Bitmap(bm) => assert_eq!(bm.to_vec(), vec![0, 1, 2, 5, 6, 7, 8, 9]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_each_block_matches_for_each() {
        let selections = [
            DocSelection::All(2600),
            DocSelection::Range(3, 6),
            DocSelection::Range(100, 100 + 3 * BLOCK_SIZE as DocId + 7),
            DocSelection::Bitmap(RoaringBitmap::from_iter([9u32, 1, 4, 70_000])),
            DocSelection::Bitmap(RoaringBitmap::from_sorted(0..9000u32)),
            DocSelection::Empty,
        ];
        for sel in selections {
            let mut rows = Vec::new();
            sel.for_each(|d| rows.push(d));
            let mut blocks = Vec::new();
            sel.for_each_block(|b| {
                assert!(b.len() <= BLOCK_SIZE);
                assert!(!b.is_empty());
                match b {
                    DocBlock::Run(s, e) => blocks.extend(s..e),
                    DocBlock::Ids(ids) => blocks.extend_from_slice(ids),
                }
            });
            assert_eq!(blocks, rows, "{sel:?}");
        }
    }

    #[test]
    fn for_each_iterates_in_order() {
        let mut seen = Vec::new();
        DocSelection::Range(3, 6).for_each(|d| seen.push(d));
        assert_eq!(seen, vec![3, 4, 5]);
        let mut seen = Vec::new();
        DocSelection::Bitmap(RoaringBitmap::from_iter([9u32, 1, 4])).for_each(|d| seen.push(d));
        assert_eq!(seen, vec![1, 4, 9]);
    }
}
