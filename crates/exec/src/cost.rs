//! Cost-based access-path selection from real segment statistics.
//!
//! The filter path (§4.2–4.3) chooses among sorted-column ranges,
//! inverted-index probes, and scans. This module makes that choice from
//! the statistics the segment already stores instead of a fixed
//! structure preference:
//!
//! * **sorted runs** — `SortedIndex` run lengths give the *exact*
//!   matching doc count for any range or id set;
//! * **inverted postings** — per-id posting cardinalities give the exact
//!   count for single-value columns (an upper bound for multi-value);
//! * **zone maps** — numeric range predicates on unindexed columns
//!   interpolate against the column's min/max;
//! * **dictionary NDV** — everything else assumes values distribute
//!   uniformly over the exact distinct-value count.
//!
//! [`choose_path`] turns an estimate into an [`AccessPath`] per leaf.
//! The choice is a pure function of (segment, leaf, mode) — never of the
//! enclosing conjunction's current selection, the batch kernel, or any
//! runtime calibration — so the same leaf picks the same path in every
//! evaluation order, which is what keeps plan choice byte-invisible to
//! results and keeps the reordered plan's filter-entry count bounded by
//! the naive plan's.

use crate::selection::{IdMatcher, MatchKind};
use pinot_pql::{CmpOp, Predicate};
use pinot_segment::ImmutableSegment;
use std::sync::OnceLock;

/// Access-path strategy: `Auto` chooses per leaf from statistics; the
/// forced modes pin one path wherever its structure exists (falling back
/// to a scan where it does not) so tests and benches can isolate a
/// strategy. Every mode produces byte-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    #[default]
    Auto,
    Scan,
    Inverted,
    Sorted,
}

impl PlannerMode {
    pub fn parse(s: &str) -> Option<PlannerMode> {
        match s {
            "auto" => Some(PlannerMode::Auto),
            "scan" => Some(PlannerMode::Scan),
            "inverted" => Some(PlannerMode::Inverted),
            "sorted" => Some(PlannerMode::Sorted),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            PlannerMode::Auto => "auto",
            PlannerMode::Scan => "scan",
            PlannerMode::Inverted => "inverted",
            PlannerMode::Sorted => "sorted",
        }
    }
}

/// Process-wide default strategy, read once from `PINOT_EXEC_PLANNER`
/// (`auto` | `scan` | `inverted` | `sorted`; unset or unknown → auto).
pub fn planner_default() -> PlannerMode {
    static DEFAULT: OnceLock<PlannerMode> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("PINOT_EXEC_PLANNER")
            .ok()
            .and_then(|v| PlannerMode::parse(&v))
            .unwrap_or_default()
    })
}

/// Physical access path chosen for one predicate leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Sorted-column binary search: one contiguous doc range per id range.
    Sorted,
    /// Inverted-index probe: union of roaring posting lists.
    Inverted,
    /// Forward-index scan (range-restricted inside a conjunction).
    Scan,
}

impl AccessPath {
    pub fn as_str(self) -> &'static str {
        match self {
            AccessPath::Sorted => "sorted",
            AccessPath::Inverted => "inverted",
            AccessPath::Scan => "scan",
        }
    }
}

/// Selectivity estimate for one predicate leaf on one segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafEstimate {
    /// Estimated fraction of the segment's docs matching, in `[0, 1]`.
    pub selectivity: f64,
    /// True when the estimate is an exact count (sorted runs, single-value
    /// postings, or a definite miss), not a uniformity assumption.
    pub exact: bool,
    /// Index probes an inverted/sorted evaluation would need: dict ids in
    /// the range, or ids in the IN set. The fan-out gate's first input.
    pub probes: usize,
}

impl LeafEstimate {
    fn inexact(selectivity: f64, probes: usize) -> LeafEstimate {
        LeafEstimate {
            selectivity: selectivity.clamp(0.0, 1.0),
            exact: false,
            probes,
        }
    }

    /// Estimated matching docs out of `total`.
    pub fn est_docs(&self, total: u64) -> u64 {
        (self.selectivity * total as f64).round() as u64
    }
}

/// Prior for leaves the estimator cannot compile (unknown column, shape
/// the dictionary cannot translate): assume half the segment matches.
const UNKNOWN_SELECTIVITY: f64 = 0.5;

/// An inverted evaluation unions one posting list per probed dict id;
/// past this many probes the union dominates and a (range-restricted)
/// scan is cheaper even when the index exists. Gates wide IN-lists and
/// huge dict-id ranges back to scans.
pub const MAX_INDEX_PROBES: usize = 1024;

/// Above this estimated selectivity an inverted probe materializes most
/// of the segment as postings anyway; the scan path touches the same
/// docs without building the bitmap union first. Calibrated against the
/// planner bench: Roaring's container-at-a-time union is so much cheaper
/// per doc than a forward-index decode that the crossover only happens
/// when nearly everything matches (at 75% selectivity the inverted path
/// still beat the scan ~1.6× on the bench corpus).
pub const INVERTED_MAX_SELECTIVITY: f64 = 0.9;

/// Estimate one leaf's selectivity from segment statistics. Non-leaf
/// predicates get the unknown prior (callers decompose And/Or/Not via
/// [`estimate_predicate`]).
pub fn estimate_leaf(segment: &ImmutableSegment, leaf: &Predicate) -> LeafEstimate {
    let num_docs = segment.num_docs() as f64;
    let Ok(matcher) = IdMatcher::compile(segment, leaf) else {
        return LeafEstimate::inexact(UNKNOWN_SELECTIVITY, 0);
    };
    // Definite miss: the value is absent from this segment's dictionary
    // (the same signal a bloom filter would give a routed Eq probe).
    if matches!(matcher.kind, MatchKind::Nothing) {
        return LeafEstimate {
            selectivity: 0.0,
            exact: true,
            probes: 0,
        };
    }
    let Ok(col) = segment.column(&matcher.column) else {
        return LeafEstimate::inexact(UNKNOWN_SELECTIVITY, 0);
    };
    if num_docs == 0.0 {
        return LeafEstimate {
            selectivity: 0.0,
            exact: true,
            probes: 0,
        };
    }
    let probes = match &matcher.kind {
        MatchKind::Range(lo, hi) => (hi - lo) as usize,
        MatchKind::Set(ids) => ids.len(),
        MatchKind::Nothing => 0,
    };

    // Sorted runs: exact matching doc counts from the run-length index.
    if let Some(sorted) = &col.sorted {
        let docs = match &matcher.kind {
            MatchKind::Range(lo, hi) => {
                let (s, e) = sorted.doc_range_for_ids(*lo, *hi);
                (e - s) as u64
            }
            MatchKind::Set(ids) => ids.iter().map(|&id| sorted.run_length(id) as u64).sum(),
            MatchKind::Nothing => 0,
        };
        return LeafEstimate {
            selectivity: (docs as f64 / num_docs).clamp(0.0, 1.0),
            exact: true,
            probes,
        };
    }

    // Inverted postings: exact doc frequencies for single-value columns
    // (postings are disjoint); an upper bound for multi-value.
    if let Some(inv) = &col.inverted {
        let docs = match &matcher.kind {
            MatchKind::Range(lo, hi) => inv.doc_frequency_range(*lo, *hi),
            MatchKind::Set(ids) => ids.iter().map(|&id| inv.doc_frequency(id)).sum(),
            MatchKind::Nothing => 0,
        };
        return LeafEstimate {
            selectivity: (docs as f64 / num_docs).clamp(0.0, 1.0),
            exact: col.forward.is_single_value(),
            probes,
        };
    }

    // Zone-map interpolation for numeric ranges on unindexed columns.
    if let Some(sel) = zone_map_fraction(segment, leaf) {
        return LeafEstimate::inexact(sel, probes);
    }

    // Dictionary NDV, uniform over distinct values. The NDV itself is
    // exact (segment-local dictionaries are built from the data), only
    // the per-value distribution is assumed.
    let card = col.dictionary.cardinality();
    let sel = match &matcher.kind {
        MatchKind::Range(lo, hi) => col.dictionary.ndv_fraction(*lo, *hi),
        MatchKind::Set(ids) => {
            if card == 0 {
                0.0
            } else {
                ids.len() as f64 / card as f64
            }
        }
        MatchKind::Nothing => 0.0,
    };
    LeafEstimate::inexact(sel, probes)
}

/// Zone-map range fraction for a numeric comparison/BETWEEN leaf:
/// interpolate the predicate's value interval against the column's
/// min/max from segment metadata. `None` for non-range shapes,
/// non-numeric columns, or degenerate zone maps.
fn zone_map_fraction(segment: &ImmutableSegment, leaf: &Predicate) -> Option<f64> {
    let (column, lo, hi) = match leaf {
        Predicate::Cmp { column, op, value } => {
            let v = value.as_f64()?;
            match op {
                CmpOp::Lt | CmpOp::Le => (column, None, Some(v)),
                CmpOp::Gt | CmpOp::Ge => (column, Some(v), None),
                _ => return None,
            }
        }
        Predicate::Between { column, low, high } => {
            (column, Some(low.as_f64()?), Some(high.as_f64()?))
        }
        _ => return None,
    };
    let stats = segment.metadata().column(column)?;
    if !stats.data_type.is_numeric() || !stats.single_value {
        return None;
    }
    let min = stats.min.as_ref()?.as_f64()?;
    let max = stats.max.as_ref()?.as_f64()?;
    Some(crate::prune::zone_overlap_fraction(min, max, lo, hi))
}

/// Estimated selectivity of a whole (normalized) predicate tree, in
/// `[0, 1]`: conjunctions multiply (independence), disjunctions combine
/// by inclusion-exclusion under independence, negation complements.
/// `And` is therefore never above its smallest child and `Or` never
/// below its largest — the monotonicity the proptests pin.
pub fn estimate_predicate(segment: &ImmutableSegment, pred: &Predicate) -> f64 {
    match pred {
        Predicate::And(ps) => ps
            .iter()
            .map(|p| estimate_predicate(segment, p))
            .product::<f64>()
            .clamp(0.0, 1.0),
        Predicate::Or(ps) => {
            let none: f64 = ps
                .iter()
                .map(|p| 1.0 - estimate_predicate(segment, p))
                .product();
            (1.0 - none).clamp(0.0, 1.0)
        }
        Predicate::Not(inner) => (1.0 - estimate_predicate(segment, inner)).clamp(0.0, 1.0),
        leaf => estimate_leaf(segment, leaf).selectivity,
    }
}

/// Choose the access path for one leaf. Pure in (segment, leaf, mode);
/// see the module docs for why that purity is load-bearing.
///
/// `Auto` prefers the sorted index (two binary searches, one contiguous
/// range — always cheapest), then the inverted index unless the leaf
/// needs more than [`MAX_INDEX_PROBES`] posting unions or is estimated
/// above [`INVERTED_MAX_SELECTIVITY`] (both fall back to the scan, which
/// inside a conjunction is further restricted to the already-selected
/// docs). Forced modes pin their path wherever the structure exists.
pub fn choose_path(
    segment: &ImmutableSegment,
    leaf: &Predicate,
    mode: PlannerMode,
) -> (AccessPath, LeafEstimate) {
    let est = estimate_leaf(segment, leaf);
    let column = match leaf {
        Predicate::Cmp { column, .. }
        | Predicate::In { column, .. }
        | Predicate::Between { column, .. } => column,
        _ => return (AccessPath::Scan, est),
    };
    let Ok(col) = segment.column(column) else {
        return (AccessPath::Scan, est);
    };
    let path = match mode {
        PlannerMode::Scan => AccessPath::Scan,
        PlannerMode::Sorted if col.sorted.is_some() => AccessPath::Sorted,
        PlannerMode::Sorted => AccessPath::Scan,
        PlannerMode::Inverted if col.inverted.is_some() => AccessPath::Inverted,
        PlannerMode::Inverted => AccessPath::Scan,
        PlannerMode::Auto => {
            if col.sorted.is_some() {
                AccessPath::Sorted
            } else if col.inverted.is_some()
                && est.probes <= MAX_INDEX_PROBES
                && est.selectivity <= INVERTED_MAX_SELECTIVITY
            {
                AccessPath::Inverted
            } else {
                AccessPath::Scan
            }
        }
    };
    (path, est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_common::{DataType, FieldSpec, Record, Schema, Value};
    use pinot_pql::parse;
    use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
    use std::sync::Arc;

    fn segment(sorted: bool, inverted: bool) -> Arc<ImmutableSegment> {
        let schema = Schema::new(
            "t",
            vec![
                FieldSpec::dimension("k", DataType::Long),
                FieldSpec::dimension("c", DataType::String),
                FieldSpec::metric("m", DataType::Long),
            ],
        )
        .unwrap();
        let mut cfg = BuilderConfig::new("s", "t");
        if sorted {
            cfg = cfg.with_sort_columns(&["k"]);
        }
        if inverted {
            cfg = cfg.with_inverted_columns(&["c"]);
        }
        let mut b = SegmentBuilder::new(schema, cfg).unwrap();
        for i in 0..100i64 {
            b.add(Record::new(vec![
                Value::Long(i % 10),
                Value::String(format!("c{}", i % 4)),
                Value::Long(i),
            ]))
            .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    fn filter_of(q: &str) -> Predicate {
        parse(q).unwrap().filter.unwrap()
    }

    #[test]
    fn mode_parsing_round_trips() {
        for m in [
            PlannerMode::Auto,
            PlannerMode::Scan,
            PlannerMode::Inverted,
            PlannerMode::Sorted,
        ] {
            assert_eq!(PlannerMode::parse(m.as_str()), Some(m));
        }
        assert_eq!(PlannerMode::parse("bogus"), None);
    }

    #[test]
    fn sorted_estimates_are_exact() {
        let seg = segment(true, false);
        let e = estimate_leaf(&seg, &filter_of("SELECT COUNT(*) FROM t WHERE k = 3"));
        assert!(e.exact);
        assert!((e.selectivity - 0.10).abs() < 1e-9);
        let e = estimate_leaf(
            &seg,
            &filter_of("SELECT COUNT(*) FROM t WHERE k IN (1, 5, 9)"),
        );
        assert!(e.exact);
        assert!((e.selectivity - 0.30).abs() < 1e-9);
    }

    #[test]
    fn inverted_estimates_are_exact_for_sv() {
        let seg = segment(false, true);
        let e = estimate_leaf(&seg, &filter_of("SELECT COUNT(*) FROM t WHERE c = 'c1'"));
        assert!(e.exact);
        assert!((e.selectivity - 0.25).abs() < 1e-9);
    }

    #[test]
    fn definite_miss_is_zero() {
        let seg = segment(false, true);
        let e = estimate_leaf(&seg, &filter_of("SELECT COUNT(*) FROM t WHERE c = 'zz'"));
        assert!(e.exact);
        assert_eq!(e.selectivity, 0.0);
    }

    #[test]
    fn zone_map_interpolates_numeric_ranges() {
        let seg = segment(false, false);
        // m spans [0, 99]; m > 79 covers ~20% of the value range.
        let e = estimate_leaf(&seg, &filter_of("SELECT COUNT(*) FROM t WHERE m > 79"));
        assert!(!e.exact);
        assert!((e.selectivity - 0.2).abs() < 0.05, "{}", e.selectivity);
        let e = estimate_leaf(
            &seg,
            &filter_of("SELECT COUNT(*) FROM t WHERE m BETWEEN 10 AND 19"),
        );
        assert!((e.selectivity - 0.1).abs() < 0.05, "{}", e.selectivity);
    }

    #[test]
    fn tree_estimates_compose() {
        let seg = segment(true, true);
        let and = estimate_predicate(
            &seg,
            &filter_of("SELECT COUNT(*) FROM t WHERE k = 3 AND c = 'c1'"),
        );
        assert!((and - 0.025).abs() < 1e-9);
        let or = estimate_predicate(
            &seg,
            &filter_of("SELECT COUNT(*) FROM t WHERE k = 3 OR c = 'c1'"),
        );
        assert!((or - (0.1 + 0.25 - 0.025)).abs() < 1e-9);
        let not = estimate_predicate(&seg, &filter_of("SELECT COUNT(*) FROM t WHERE NOT k = 3"));
        assert!((not - 0.9).abs() < 1e-9);
    }

    #[test]
    fn auto_gates_low_value_index_probes_to_scans() {
        let seg = segment(false, true);
        // c = 'c1' is 25% selective: keep the index.
        let (path, _) = choose_path(
            &seg,
            &filter_of("SELECT COUNT(*) FROM t WHERE c = 'c1'"),
            PlannerMode::Auto,
        );
        assert_eq!(path, AccessPath::Inverted);
        // c >= 'c1' matches 75% of docs: still cheaper through the union.
        let (path, est) = choose_path(
            &seg,
            &filter_of("SELECT COUNT(*) FROM t WHERE c >= 'c1'"),
            PlannerMode::Auto,
        );
        assert_eq!(path, AccessPath::Inverted);
        assert!(est.selectivity <= INVERTED_MAX_SELECTIVITY);
        // c >= 'c0' matches every doc: past the selectivity gate — the
        // union would materialize the whole segment as postings.
        let (path, est) = choose_path(
            &seg,
            &filter_of("SELECT COUNT(*) FROM t WHERE c >= 'c0'"),
            PlannerMode::Auto,
        );
        assert_eq!(path, AccessPath::Scan);
        assert!(est.selectivity > INVERTED_MAX_SELECTIVITY);
    }

    #[test]
    fn forced_modes_pin_where_structure_exists() {
        let seg = segment(true, true);
        let k_eq = filter_of("SELECT COUNT(*) FROM t WHERE k = 3");
        let c_eq = filter_of("SELECT COUNT(*) FROM t WHERE c = 'c1'");
        assert_eq!(
            choose_path(&seg, &k_eq, PlannerMode::Sorted).0,
            AccessPath::Sorted
        );
        assert_eq!(
            choose_path(&seg, &c_eq, PlannerMode::Sorted).0,
            AccessPath::Scan
        );
        assert_eq!(
            choose_path(&seg, &c_eq, PlannerMode::Inverted).0,
            AccessPath::Inverted
        );
        assert_eq!(
            choose_path(&seg, &k_eq, PlannerMode::Scan).0,
            AccessPath::Scan
        );
    }
}
