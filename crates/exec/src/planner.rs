//! Per-segment physical planning.
//!
//! Implements the operator-selection rules of §3.3.4 and §4.1–4.3:
//! metadata-only plans, star-tree plans, and index-backed filter plans with
//! cost-based predicate ordering (sorted column first, then inverted
//! indexes, then scans restricted to the already-selected docs).

use crate::cost::{self, AccessPath, PlannerMode};
use crate::segment_exec::SegmentHandle;
use crate::selection::{DocSelection, IdMatcher, MatchKind};
use pinot_bitmap::RoaringBitmap;
use pinot_common::query::ExecutionStats;
use pinot_common::{Result, Value};
use pinot_obs::Obs;
use pinot_pql::{AggFunction, CmpOp, Predicate, Query, SelectList};
use pinot_segment::{DictId, ImmutableSegment};
use pinot_startree::DimFilter;
use std::cell::RefCell;

/// Which physical plan a segment execution used (exposed for tests, stats
/// and the Figure 13 harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Answered purely from segment metadata.
    MetadataOnly,
    /// Answered from star-tree preaggregated records.
    StarTree,
    /// Filter plus scan/aggregation over raw docs.
    Raw,
}

impl PlanKind {
    /// Stable lowercase label used in stats and query traces.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanKind::MetadataOnly => "metadata_only",
            PlanKind::StarTree => "star_tree",
            PlanKind::Raw => "raw",
        }
    }
}

impl std::fmt::Display for PlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Decide the plan for a query on a segment (without executing it).
pub fn plan_segment(handle: &SegmentHandle, query: &Query) -> PlanKind {
    if metadata_only_plan(&handle.segment, query).is_some() {
        PlanKind::MetadataOnly
    } else if try_star_tree(handle, query).is_some() {
        PlanKind::StarTree
    } else {
        PlanKind::Raw
    }
}

/// Rewrite away `Ne` and `NOT IN` so downstream code only sees positive
/// leaves under explicit `Not` nodes.
pub fn normalize_predicate(p: &Predicate) -> Predicate {
    match p {
        Predicate::And(ps) => Predicate::And(ps.iter().map(normalize_predicate).collect()),
        Predicate::Or(ps) => Predicate::Or(ps.iter().map(normalize_predicate).collect()),
        Predicate::Not(inner) => Predicate::Not(Box::new(normalize_predicate(inner))),
        Predicate::Cmp {
            column,
            op: CmpOp::Ne,
            value,
        } => Predicate::Not(Box::new(Predicate::Cmp {
            column: column.clone(),
            op: CmpOp::Eq,
            value: value.clone(),
        })),
        Predicate::In {
            column,
            values,
            negated: true,
        } => Predicate::Not(Box::new(Predicate::In {
            column: column.clone(),
            values: values.clone(),
            negated: false,
        })),
        other => other.clone(),
    }
}

/// Metadata-only plan: unfiltered, ungrouped COUNT(*)/MIN/MAX where the
/// segment metadata already has the answer (§4.1). Returns the final value
/// of each aggregation.
pub fn metadata_only_plan(segment: &ImmutableSegment, query: &Query) -> Option<Vec<Value>> {
    if query.filter.is_some() || !query.group_by.is_empty() {
        return None;
    }
    let aggs = match &query.select {
        SelectList::Aggregations(a) => a,
        _ => return None,
    };
    let mut out = Vec::with_capacity(aggs.len());
    for a in aggs {
        match (a.function, &a.column) {
            (AggFunction::Count, None) => {
                out.push(Value::Long(segment.num_docs() as i64));
            }
            // COUNT(col) counts docs whose value is numeric; columns are
            // null-free, so for a numeric single-value column that is
            // every doc. (Multi-value and string columns contribute
            // nothing in the scan paths, so they must not answer here.)
            (AggFunction::Count, Some(c)) => {
                let stats = segment.metadata().column(c)?;
                if !stats.data_type.is_numeric() || !stats.single_value {
                    return None;
                }
                out.push(Value::Long(segment.num_docs() as i64));
            }
            (AggFunction::Min, Some(c)) => {
                out.push(Value::Double(numeric_bound(segment, c, false)?));
            }
            (AggFunction::Max, Some(c)) => {
                out.push(Value::Double(numeric_bound(segment, c, true)?));
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Zone-map bound usable as a MIN/MAX answer: numeric single-value
/// columns only (scan-path MIN/MAX ignores multi-value columns), and
/// only finite bounds — the scan path folds NaN/infinite extremes to
/// `Null`, so those segments must keep scanning to stay byte-identical.
fn numeric_bound(segment: &ImmutableSegment, column: &str, max: bool) -> Option<f64> {
    let stats = segment.metadata().column(column)?;
    if !stats.data_type.is_numeric() || !stats.single_value {
        return None;
    }
    let bound = if max { &stats.max } else { &stats.min };
    let v = bound.as_ref()?.as_f64()?;
    v.is_finite().then_some(v)
}

/// Try to convert the query into a star-tree execution: per-dimension
/// filters plus group dims. `None` means the tree cannot serve this query
/// and execution falls back to raw data (§4.3: "otherwise, query execution
/// runs on the original unaggregated data").
pub fn try_star_tree(
    handle: &SegmentHandle,
    query: &Query,
) -> Option<(Vec<DimFilter>, Vec<usize>)> {
    let tree = handle.star_tree.as_ref()?;
    let aggs = match &query.select {
        SelectList::Aggregations(a) => a,
        _ => return None,
    };
    // Every aggregation must be preaggregation-compatible and on a tree
    // metric (COUNT(*) needs no column).
    for a in aggs {
        if !a.function.star_tree_compatible() {
            return None;
        }
        if let Some(c) = &a.column {
            tree.metric_index(c)?;
        }
    }
    // Group-by columns must all be tree dimensions.
    let mut group_dims = Vec::with_capacity(query.group_by.len());
    for g in &query.group_by {
        group_dims.push(tree.dimension_index(g)?);
    }
    // The filter must decompose into per-dimension id sets.
    let mut filters = vec![DimFilter::Any; tree.dimensions().len()];
    if let Some(pred) = &query.filter {
        let normalized = normalize_predicate(pred);
        collect_dim_filters(&handle.segment, tree, &normalized, &mut filters)?;
    }
    Some((filters, group_dims))
}

/// Maximum ids a range predicate may expand to for star-tree execution;
/// beyond this the raw path with a real range operator is cheaper.
const MAX_RANGE_EXPANSION: usize = 4096;

fn collect_dim_filters(
    segment: &ImmutableSegment,
    tree: &pinot_startree::StarTree,
    pred: &Predicate,
    filters: &mut [DimFilter],
) -> Option<()> {
    match pred {
        Predicate::And(ps) => {
            for p in ps {
                collect_dim_filters(segment, tree, p, filters)?;
            }
            Some(())
        }
        Predicate::Or(_) => {
            // OR is convertible only when every branch constrains the same
            // single dimension (Figure 10's multi-branch navigation).
            let (dim, ids) = or_to_ids(segment, tree, pred)?;
            intersect_filter(&mut filters[dim], ids);
            Some(())
        }
        Predicate::Not(_) => None,
        leaf => {
            let (dim, ids) = leaf_to_ids(segment, tree, leaf)?;
            intersect_filter(&mut filters[dim], ids);
            Some(())
        }
    }
}

fn or_to_ids(
    segment: &ImmutableSegment,
    tree: &pinot_startree::StarTree,
    pred: &Predicate,
) -> Option<(usize, Vec<DictId>)> {
    match pred {
        Predicate::Or(ps) => {
            let mut dim: Option<usize> = None;
            let mut ids: Vec<DictId> = Vec::new();
            for p in ps {
                let (d, mut i) = or_to_ids(segment, tree, p)?;
                match dim {
                    None => dim = Some(d),
                    Some(existing) if existing == d => {}
                    Some(_) => return None, // spans multiple dimensions
                }
                ids.append(&mut i);
            }
            ids.sort_unstable();
            ids.dedup();
            Some((dim?, ids))
        }
        leaf => leaf_to_ids(segment, tree, leaf),
    }
}

fn leaf_to_ids(
    segment: &ImmutableSegment,
    tree: &pinot_startree::StarTree,
    leaf: &Predicate,
) -> Option<(usize, Vec<DictId>)> {
    let column = match leaf {
        Predicate::Cmp { column, .. }
        | Predicate::In { column, .. }
        | Predicate::Between { column, .. } => column,
        _ => return None,
    };
    let dim = tree.dimension_index(column)?;
    let matcher = IdMatcher::compile(segment, leaf).ok()?;
    let ids = match matcher.kind {
        MatchKind::Range(lo, hi) => {
            if (hi - lo) as usize > MAX_RANGE_EXPANSION {
                return None;
            }
            (lo..hi).collect()
        }
        MatchKind::Set(ids) => ids,
        MatchKind::Nothing => Vec::new(),
    };
    Some((dim, ids))
}

fn intersect_filter(f: &mut DimFilter, ids: Vec<DictId>) {
    match f {
        DimFilter::Any => *f = DimFilter::In(ids),
        DimFilter::In(existing) => {
            let keep: Vec<DictId> = existing
                .iter()
                .copied()
                .filter(|id| ids.binary_search(id).is_ok())
                .collect();
            *existing = keep;
        }
    }
}

/// Everything one filter evaluation needs beyond the predicate itself:
/// the scan-kernel choice, the access-path strategy, whether conjuncts
/// reorder, and the optional observation sinks. None of these fields may
/// influence which docs a leaf selects — only how the selection is
/// computed and what gets recorded about it.
pub(crate) struct FilterCtx<'a> {
    /// Scan-fallback leaves decode dict-id blocks (`true`) or test doc
    /// by doc through the forward index (`false`).
    pub batch: bool,
    /// Access-path strategy per leaf ([`cost::choose_path`]).
    pub mode: PlannerMode,
    /// Reorder conjuncts cheapest-first and range-restrict scan leaves.
    /// `false` is the ablation baseline: written order, full leaves.
    pub cost_ordered: bool,
    /// Metrics sink for per-leaf path counters and the est-vs-actual
    /// histogram.
    pub obs: Option<&'a Obs>,
    /// When profiling, each evaluated leaf appends its measured
    /// [`ConjunctMeasure`] here for EXPLAIN ANALYZE.
    pub report: Option<&'a RefCell<Vec<ConjunctMeasure>>>,
}

impl FilterCtx<'_> {
    fn new(batch: bool, mode: PlannerMode) -> FilterCtx<'static> {
        FilterCtx {
            batch,
            mode,
            cost_ordered: true,
            obs: None,
            report: None,
        }
    }
}

/// What one leaf actually did during a profiled evaluation: the chosen
/// access path and estimated vs measured matching docs. The label is
/// pre-rendered as `{predicate} ({path})` and shared into the profile
/// tree — built once per leaf, profiling overhead is a measured budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctMeasure {
    pub label: std::sync::Arc<str>,
    pub est_docs: u64,
    pub actual_docs: u64,
}

/// Evaluate a filter to a document selection, using the best index per leaf
/// and ordering conjuncts cheapest-first (§4.2). Scan-fallback leaves use
/// the batched or row path per the `PINOT_EXEC_BATCH` default; the access
/// path per leaf follows the `PINOT_EXEC_PLANNER` default.
pub fn evaluate_filter(
    segment: &ImmutableSegment,
    pred: Option<&Predicate>,
    stats: &mut ExecutionStats,
) -> Result<DocSelection> {
    evaluate_filter_mode(segment, pred, stats, crate::batch::batch_default())
}

/// Like [`evaluate_filter`] with the scan-leaf path pinned: `batch`
/// decodes dict-id blocks and matches in id space, `!batch` tests doc by
/// doc through the forward index.
pub fn evaluate_filter_mode(
    segment: &ImmutableSegment,
    pred: Option<&Predicate>,
    stats: &mut ExecutionStats,
    batch: bool,
) -> Result<DocSelection> {
    let ctx = FilterCtx::new(batch, cost::planner_default());
    evaluate_filter_ctx(segment, pred, stats, &ctx)
}

/// Like [`evaluate_filter`] with the access-path strategy pinned too —
/// the entry point the strategy-matrix differential tests and the
/// planner proptests drive directly.
pub fn evaluate_filter_planned(
    segment: &ImmutableSegment,
    pred: Option<&Predicate>,
    stats: &mut ExecutionStats,
    mode: PlannerMode,
    batch: bool,
) -> Result<DocSelection> {
    let ctx = FilterCtx::new(batch, mode);
    evaluate_filter_ctx(segment, pred, stats, &ctx)
}

/// Like [`evaluate_filter`] but with cost-based conjunct reordering
/// optionally disabled (conjuncts then evaluate in written order, each
/// producing its full document set before intersection). Exists for the
/// ablation benchmark quantifying §4.2's "sorted operators execute first
/// and pass their range to subsequent operators" rule.
pub fn evaluate_filter_with_ordering(
    segment: &ImmutableSegment,
    pred: Option<&Predicate>,
    stats: &mut ExecutionStats,
    cost_ordered: bool,
) -> Result<DocSelection> {
    let ctx = FilterCtx {
        cost_ordered,
        ..FilterCtx::new(crate::batch::batch_default(), cost::planner_default())
    };
    evaluate_filter_ctx(segment, pred, stats, &ctx)
}

pub(crate) fn evaluate_filter_ctx(
    segment: &ImmutableSegment,
    pred: Option<&Predicate>,
    stats: &mut ExecutionStats,
    ctx: &FilterCtx<'_>,
) -> Result<DocSelection> {
    let num_docs = segment.num_docs();
    match pred {
        None => Ok(DocSelection::All(num_docs)),
        Some(p) => {
            let normalized = normalize_predicate(p);
            if ctx.cost_ordered {
                eval(segment, &normalized, stats, ctx)
            } else {
                eval_unordered(segment, &normalized, stats, ctx)
            }
        }
    }
}

/// Naive evaluation: no reordering, no range-restricted scans, no bulk
/// index operators. Each leaf still uses the same access path as the
/// ordered plan (the choice is a pure function of segment/leaf/mode), so
/// the two differ only in how much work surrounds identical leaves.
fn eval_unordered(
    segment: &ImmutableSegment,
    pred: &Predicate,
    stats: &mut ExecutionStats,
    ctx: &FilterCtx<'_>,
) -> Result<DocSelection> {
    let num_docs = segment.num_docs();
    match pred {
        Predicate::And(ps) => {
            let mut acc = DocSelection::All(num_docs);
            for p in ps {
                let s = eval_unordered(segment, p, stats, ctx)?;
                acc = acc.and(&s);
            }
            Ok(acc)
        }
        Predicate::Or(ps) => {
            let mut acc = DocSelection::Empty;
            for p in ps {
                acc = acc.or(&eval_unordered(segment, p, stats, ctx)?);
            }
            Ok(acc)
        }
        Predicate::Not(inner) => Ok(eval_unordered(segment, inner, stats, ctx)?.not(num_docs)),
        leaf => eval_leaf(segment, leaf, stats, None, ctx),
    }
}

fn eval(
    segment: &ImmutableSegment,
    pred: &Predicate,
    stats: &mut ExecutionStats,
    ctx: &FilterCtx<'_>,
) -> Result<DocSelection> {
    let num_docs = segment.num_docs();
    match pred {
        Predicate::And(ps) => eval_and(segment, ps, stats, ctx),
        Predicate::Or(ps) => {
            // IndexOr: when every branch is an inverted-path leaf, union
            // all their postings container-at-a-time in one k-way pass
            // instead of folding pairwise bitmap ORs. Each branch still
            // counts its own postings into the stats, so the fold and
            // bulk paths are indistinguishable except in time.
            let bulk = ps.len() >= 2
                && ps
                    .iter()
                    .all(|p| conjunct_class(segment, p, ctx.mode) == CLASS_INVERTED);
            if bulk {
                let mut bms: Vec<RoaringBitmap> = Vec::with_capacity(ps.len());
                for p in ps {
                    if let DocSelection::Bitmap(bm) = eval_leaf(segment, p, stats, None, ctx)? {
                        bms.push(bm);
                    }
                }
                if let Some(obs) = ctx.obs {
                    obs.metrics.counter_add("exec.plan_index_or", 1);
                }
                let refs: Vec<&RoaringBitmap> = bms.iter().collect();
                let bm = RoaringBitmap::union_many(&refs);
                return Ok(if bm.is_empty() {
                    DocSelection::Empty
                } else {
                    DocSelection::Bitmap(bm)
                });
            }
            let mut acc = DocSelection::Empty;
            for p in ps {
                acc = acc.or(&eval(segment, p, stats, ctx)?);
            }
            Ok(acc)
        }
        Predicate::Not(inner) => Ok(eval(segment, inner, stats, ctx)?.not(num_docs)),
        leaf => eval_leaf(segment, leaf, stats, None, ctx),
    }
}

const CLASS_SORTED: u8 = 0;
const CLASS_INVERTED: u8 = 1;
const CLASS_SUBTREE: u8 = 2;
const CLASS_SCAN: u8 = 3;

/// Cost class of a conjunct: lower executes first. Leaves classify by
/// their *chosen* access path, so an inverted column whose predicate the
/// fan-out gate sends to a scan correctly defers to the end, where the
/// scan runs range-restricted to the surviving selection.
fn conjunct_class(segment: &ImmutableSegment, pred: &Predicate, mode: PlannerMode) -> u8 {
    match pred {
        Predicate::Cmp { .. } | Predicate::In { .. } | Predicate::Between { .. } => {
            match cost::choose_path(segment, pred, mode).0 {
                AccessPath::Sorted => CLASS_SORTED,
                AccessPath::Inverted => CLASS_INVERTED,
                AccessPath::Scan => CLASS_SCAN,
            }
        }
        _ => CLASS_SUBTREE,
    }
}

/// One top-level conjunct as the planner will run it: its rendering, the
/// access path (or `subtree`), and the estimated selectivity.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctPlan {
    pub predicate: String,
    pub path: &'static str,
    pub est_selectivity: f64,
}

/// The filter's top-level conjuncts in the order [`eval_and`] will run
/// them on this segment, each with the access path that decided its
/// position and its estimated selectivity. Mirrors the planner exactly:
/// the filter is normalized first and the sort is stable, so ties keep
/// query order.
pub fn conjunct_order(
    segment: &ImmutableSegment,
    filter: Option<&Predicate>,
    mode: PlannerMode,
) -> Vec<ConjunctPlan> {
    let Some(filter) = filter else {
        return Vec::new();
    };
    let normalized = normalize_predicate(filter);
    let conjuncts = match normalized {
        Predicate::And(ps) => ps,
        p => vec![p],
    };
    let mut keyed: Vec<(u8, &Predicate)> = conjuncts
        .iter()
        .map(|p| (conjunct_class(segment, p, mode), p))
        .collect();
    keyed.sort_by_key(|(class, _)| *class);
    keyed
        .into_iter()
        .map(|(class, p)| {
            let (path, est) = if class == CLASS_SUBTREE {
                ("subtree", cost::estimate_predicate(segment, p))
            } else {
                let (path, est) = cost::choose_path(segment, p, mode);
                (path.as_str(), est.selectivity)
            };
            ConjunctPlan {
                predicate: describe_predicate(p),
                path,
                est_selectivity: est,
            }
        })
        .collect()
}

/// Compact one-line rendering of a predicate for EXPLAIN output.
fn describe_predicate(p: &Predicate) -> String {
    match p {
        Predicate::And(ps) => format!(
            "({})",
            ps.iter()
                .map(describe_predicate)
                .collect::<Vec<_>>()
                .join(" AND ")
        ),
        Predicate::Or(ps) => format!(
            "({})",
            ps.iter()
                .map(describe_predicate)
                .collect::<Vec<_>>()
                .join(" OR ")
        ),
        Predicate::Not(inner) => format!("NOT {}", describe_predicate(inner)),
        Predicate::Cmp { column, op, value } => {
            format!("{column} {} {value}", op.symbol())
        }
        Predicate::In {
            column,
            values,
            negated,
        } => format!(
            "{column} {}IN ({})",
            if *negated { "NOT " } else { "" },
            values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Predicate::Between { column, low, high } => {
            format!("{column} BETWEEN {low} AND {high}")
        }
    }
}

fn eval_and(
    segment: &ImmutableSegment,
    conjuncts: &[Predicate],
    stats: &mut ExecutionStats,
    ctx: &FilterCtx<'_>,
) -> Result<DocSelection> {
    let mut keyed: Vec<(u8, &Predicate)> = conjuncts
        .iter()
        .map(|p| (conjunct_class(segment, p, ctx.mode), p))
        .collect();
    keyed.sort_by_key(|(class, _)| *class);

    let mut sel = DocSelection::All(segment.num_docs());
    let mut i = 0;
    while i < keyed.len() {
        if sel.is_empty() {
            return Ok(DocSelection::Empty);
        }
        let (class, p) = keyed[i];
        match class {
            CLASS_INVERTED => {
                // IndexAnd: the stable sort groups every inverted-path
                // leaf into one run. With two or more, intersect all
                // their posting unions in a single container-at-a-time
                // k-way pass (smallest input drives) instead of folding
                // pairwise ANDs. Each leaf counts its own postings into
                // the stats exactly as the sequential fold would, and an
                // empty leaf short-circuits the rest.
                let run = keyed[i..]
                    .iter()
                    .take_while(|(c, _)| *c == CLASS_INVERTED)
                    .count();
                if run >= 2 {
                    let mut bms: Vec<RoaringBitmap> = Vec::with_capacity(run);
                    let mut empty = false;
                    for &(_, p) in &keyed[i..i + run] {
                        match eval_leaf(segment, p, stats, None, ctx)? {
                            DocSelection::Bitmap(bm) => bms.push(bm),
                            _ => {
                                empty = true;
                                break;
                            }
                        }
                    }
                    if empty {
                        return Ok(DocSelection::Empty);
                    }
                    if let Some(obs) = ctx.obs {
                        obs.metrics.counter_add("exec.plan_index_and", 1);
                    }
                    let refs: Vec<&RoaringBitmap> = bms.iter().collect();
                    let bm = RoaringBitmap::intersect_many(&refs);
                    if bm.is_empty() {
                        return Ok(DocSelection::Empty);
                    }
                    sel = sel.and(&DocSelection::Bitmap(bm));
                    i += run;
                } else {
                    let s = eval_leaf(segment, p, stats, None, ctx)?;
                    sel = sel.and(&s);
                    i += 1;
                }
            }
            CLASS_SCAN => {
                // Scan leaf: evaluate only within the current selection —
                // the "subsequent operators only evaluate part of the
                // column" rule.
                sel = eval_leaf(segment, p, stats, Some(&sel), ctx)?;
                i += 1;
            }
            CLASS_SUBTREE => {
                let s = eval(segment, p, stats, ctx)?;
                sel = sel.and(&s);
                i += 1;
            }
            _ => {
                let s = eval_leaf(segment, p, stats, None, ctx)?;
                sel = sel.and(&s);
                i += 1;
            }
        }
    }
    Ok(sel)
}

fn eval_leaf(
    segment: &ImmutableSegment,
    leaf: &Predicate,
    stats: &mut ExecutionStats,
    within: Option<&DocSelection>,
    ctx: &FilterCtx<'_>,
) -> Result<DocSelection> {
    let matcher = IdMatcher::compile(segment, leaf)?;
    let col = segment.column(&matcher.column)?;

    if matches!(matcher.kind, MatchKind::Nothing) {
        return Ok(DocSelection::Empty);
    }

    let (path, est) = cost::choose_path(segment, leaf, ctx.mode);

    // Evaluate the chosen path to the leaf's own selection; `within` is
    // applied afterwards for the index paths (the scan path is already
    // restricted to it). The observation block below reads the raw
    // selection, so estimated and actual counts cover the same scope.
    let raw = match path {
        // Sorted column: predicates become one contiguous doc range.
        AccessPath::Sorted => {
            let sorted = col.sorted.as_ref().expect("choose_path saw a sorted index");
            match &matcher.kind {
                MatchKind::Range(lo, hi) => {
                    let (s, e) = sorted.doc_range_for_ids(*lo, *hi);
                    stats.num_entries_scanned_in_filter += 2; // two index lookups
                    if s >= e {
                        DocSelection::Empty
                    } else {
                        DocSelection::Range(s, e)
                    }
                }
                MatchKind::Set(ids) => {
                    let mut acc = DocSelection::Empty;
                    for &id in ids {
                        let (s, e) = sorted.doc_range(id);
                        stats.num_entries_scanned_in_filter += 2;
                        if s < e {
                            acc = acc.or(&DocSelection::Range(s, e));
                        }
                    }
                    acc
                }
                MatchKind::Nothing => DocSelection::Empty,
            }
        }
        // Inverted index: bulk container-at-a-time postings union.
        AccessPath::Inverted => {
            let inv = col
                .inverted
                .as_ref()
                .expect("choose_path saw an inverted index");
            let bm = match &matcher.kind {
                MatchKind::Range(lo, hi) => inv.postings_range(*lo, *hi),
                MatchKind::Set(ids) => inv.postings_set(ids),
                MatchKind::Nothing => unreachable!("handled above"),
            };
            stats.num_entries_scanned_in_filter += bm.len();
            if bm.is_empty() {
                DocSelection::Empty
            } else {
                DocSelection::Bitmap(bm)
            }
        }
        AccessPath::Scan => eval_scan(segment, col, &matcher, stats, within, ctx.batch),
    };

    // Observation is read-only: path counters, the estimated-vs-actual
    // histogram, and the per-conjunct EXPLAIN ANALYZE report. Scan
    // leaves compare against a scope-scaled estimate because they only
    // ever see the docs surviving earlier conjuncts.
    if ctx.obs.is_some() || ctx.report.is_some() {
        let est_docs = match (path, within) {
            (AccessPath::Scan, Some(w)) => (est.selectivity * w.count() as f64).round() as u64,
            _ => est.est_docs(segment.num_docs() as u64),
        };
        let actual_docs = raw.count();
        if let Some(obs) = ctx.obs {
            obs.metrics.counter_add(
                match path {
                    AccessPath::Sorted => "exec.plan_sorted",
                    AccessPath::Inverted => "exec.plan_inverted",
                    AccessPath::Scan => "exec.plan_scan",
                },
                1,
            );
            obs.metrics.observe_ms(
                "exec.plan_est_vs_actual",
                (est_docs + 1) as f64 / (actual_docs + 1) as f64,
            );
        }
        if let Some(report) = ctx.report {
            let mut label = describe_predicate(leaf);
            label.push_str(" (");
            label.push_str(path.as_str());
            label.push(')');
            report.borrow_mut().push(ConjunctMeasure {
                label: label.into(),
                est_docs,
                actual_docs,
            });
        }
    }

    Ok(match (path, within) {
        (AccessPath::Scan, _) | (_, None) => raw,
        (_, Some(w)) => w.and(&raw),
    })
}

/// Forward-index scan for one leaf, restricted to `within` when given.
fn eval_scan(
    segment: &ImmutableSegment,
    col: &pinot_segment::column::ColumnData,
    matcher: &IdMatcher,
    stats: &mut ExecutionStats,
    within: Option<&DocSelection>,
    batch: bool,
) -> DocSelection {
    let mut bm = pinot_bitmap::RoaringBitmap::new();
    stats.num_entries_scanned_in_filter += match within {
        Some(w) => w.count(),
        None => segment.num_docs() as u64,
    };
    if batch && col.forward.is_single_value() {
        // Batched scan: decode dict-id blocks off the forward index and
        // match in id space — no per-doc virtual dispatch or bit math.
        let all;
        let sel: &DocSelection = match within {
            Some(w) => w,
            None => {
                all = DocSelection::All(segment.num_docs());
                &all
            }
        };
        let mut ids: Vec<DictId> = Vec::with_capacity(crate::selection::BLOCK_SIZE);
        let mut matched: Vec<u32> = vec![0; crate::selection::BLOCK_SIZE];
        sel.for_each_block(|block| {
            crate::batch::decode_block(col, &block, &mut ids);
            // Branchless select: write the doc id unconditionally, bump
            // the cursor only on match — no mispredicted branch at
            // mid-selectivity — then bulk-append the matched prefix.
            let mut m = 0usize;
            match (&block, &matcher.kind) {
                (crate::selection::DocBlock::Run(s, _), MatchKind::Range(lo, hi)) => {
                    for (i, &id) in ids.iter().enumerate() {
                        matched[m] = s + i as u32;
                        m += (id >= *lo && id < *hi) as usize;
                    }
                }
                (crate::selection::DocBlock::Run(s, _), MatchKind::Set(set)) => {
                    for (i, &id) in ids.iter().enumerate() {
                        matched[m] = s + i as u32;
                        m += set.binary_search(&id).is_ok() as usize;
                    }
                }
                (crate::selection::DocBlock::Ids(docs), MatchKind::Range(lo, hi)) => {
                    for (i, &id) in ids.iter().enumerate() {
                        matched[m] = docs[i];
                        m += (id >= *lo && id < *hi) as usize;
                    }
                }
                (crate::selection::DocBlock::Ids(docs), MatchKind::Set(set)) => {
                    for (i, &id) in ids.iter().enumerate() {
                        matched[m] = docs[i];
                        m += set.binary_search(&id).is_ok() as usize;
                    }
                }
                (_, MatchKind::Nothing) => {}
            }
            bm.append_sorted(&matched[..m]);
        });
    } else {
        match within {
            Some(w) => {
                w.for_each(|doc| {
                    if matcher.matches_doc(col, doc) {
                        bm.push_back(doc);
                    }
                });
            }
            None => {
                for doc in 0..segment.num_docs() {
                    if matcher.matches_doc(col, doc) {
                        bm.push_back(doc);
                    }
                }
            }
        }
    }
    if bm.is_empty() {
        DocSelection::Empty
    } else {
        DocSelection::Bitmap(bm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_common::{DataType, FieldSpec, Record, Schema};
    use pinot_pql::parse;
    use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
    use std::sync::Arc;

    fn segment(sorted: bool, inverted: bool) -> Arc<ImmutableSegment> {
        let schema = Schema::new(
            "t",
            vec![
                FieldSpec::dimension("k", DataType::Long),
                FieldSpec::dimension("c", DataType::String),
                FieldSpec::metric("m", DataType::Long),
            ],
        )
        .unwrap();
        let mut cfg = BuilderConfig::new("s", "t");
        if sorted {
            cfg = cfg.with_sort_columns(&["k"]);
        }
        if inverted {
            cfg = cfg.with_inverted_columns(&["c"]);
        }
        let mut b = SegmentBuilder::new(schema, cfg).unwrap();
        for i in 0..100i64 {
            b.add(Record::new(vec![
                Value::Long(i % 10),
                Value::String(format!("c{}", i % 4)),
                Value::Long(i),
            ]))
            .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    fn filter_of(q: &str) -> Predicate {
        parse(q).unwrap().filter.unwrap()
    }

    fn docs(sel: &DocSelection) -> Vec<u32> {
        let mut v = Vec::new();
        sel.for_each(|d| v.push(d));
        v
    }

    #[test]
    fn normalize_rewrites_negations() {
        let p = filter_of("SELECT COUNT(*) FROM t WHERE a != 1 AND b NOT IN (2)");
        let n = normalize_predicate(&p);
        match n {
            Predicate::And(parts) => {
                assert!(matches!(&parts[0], Predicate::Not(_)));
                assert!(matches!(&parts[1], Predicate::Not(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sorted_column_yields_ranges() {
        let seg = segment(true, false);
        let mut stats = ExecutionStats::default();
        let sel = evaluate_filter(
            &seg,
            Some(&filter_of("SELECT COUNT(*) FROM t WHERE k = 3")),
            &mut stats,
        )
        .unwrap();
        assert!(matches!(sel, DocSelection::Range(_, _)));
        assert_eq!(sel.count(), 10);
        // Every selected doc has k == 3.
        let col = seg.column("k").unwrap();
        sel.for_each(|d| assert_eq!(col.long(d), Some(3)));
    }

    #[test]
    fn inverted_column_yields_bitmaps() {
        let seg = segment(false, true);
        let mut stats = ExecutionStats::default();
        let sel = evaluate_filter(
            &seg,
            Some(&filter_of("SELECT COUNT(*) FROM t WHERE c = 'c1'")),
            &mut stats,
        )
        .unwrap();
        assert!(matches!(sel, DocSelection::Bitmap(_)));
        assert_eq!(sel.count(), 25);
    }

    #[test]
    fn all_filter_shapes_agree_across_index_types() {
        let queries = [
            "SELECT COUNT(*) FROM t WHERE k = 3",
            "SELECT COUNT(*) FROM t WHERE k != 3",
            "SELECT COUNT(*) FROM t WHERE k > 7",
            "SELECT COUNT(*) FROM t WHERE k BETWEEN 2 AND 4",
            "SELECT COUNT(*) FROM t WHERE k IN (1, 5, 9)",
            "SELECT COUNT(*) FROM t WHERE k NOT IN (1, 5)",
            "SELECT COUNT(*) FROM t WHERE c = 'c2'",
            "SELECT COUNT(*) FROM t WHERE c = 'c2' AND k < 5",
            "SELECT COUNT(*) FROM t WHERE c = 'c2' OR k = 0",
            "SELECT COUNT(*) FROM t WHERE NOT (c = 'c2' OR k = 0)",
            "SELECT COUNT(*) FROM t WHERE c = 'zz'",
            "SELECT COUNT(*) FROM t WHERE m >= 90 AND c = 'c1'",
        ];
        let plain = segment(false, false);
        let sorted = segment(true, false);
        let inverted = segment(false, true);
        for q in queries {
            let pred = filter_of(q);
            let mut s = ExecutionStats::default();
            let a = docs(&evaluate_filter(&plain, Some(&pred), &mut s).unwrap());
            // Sorted segments physically reorder rows, so compare match
            // *counts* plus the multiset of k values.
            let b_sel = evaluate_filter(&sorted, Some(&pred), &mut s).unwrap();
            let c = docs(&evaluate_filter(&inverted, Some(&pred), &mut s).unwrap());
            assert_eq!(a, c, "{q}");
            assert_eq!(a.len() as u64, b_sel.count(), "{q}");
            let key = |seg: &ImmutableSegment, ds: &[u32]| {
                let mut v: Vec<(i64, String)> = ds
                    .iter()
                    .map(|&d| {
                        (
                            seg.column("m").unwrap().long(d).unwrap(),
                            seg.column("c").unwrap().value(d).to_string(),
                        )
                    })
                    .collect();
                v.sort();
                v
            };
            assert_eq!(key(&plain, &a), key(&sorted, &docs(&b_sel)), "{q}");
        }
    }

    #[test]
    fn metadata_only_detection() {
        let seg = segment(false, false);
        let q = parse("SELECT COUNT(*), MIN(m), MAX(m) FROM t").unwrap();
        let vals = metadata_only_plan(&seg, &q).unwrap();
        assert_eq!(vals[0], Value::Long(100));
        assert_eq!(vals[1], Value::Double(0.0));
        assert_eq!(vals[2], Value::Double(99.0));
        // COUNT(col) on a numeric column is num_docs (columns are
        // null-free); on a string column it must keep scanning.
        let vals = metadata_only_plan(&seg, &parse("SELECT COUNT(m) FROM t").unwrap()).unwrap();
        assert_eq!(vals[0], Value::Long(100));
        assert!(metadata_only_plan(&seg, &parse("SELECT COUNT(c) FROM t").unwrap()).is_none());
        // Filter or grouping disables it.
        assert!(
            metadata_only_plan(&seg, &parse("SELECT COUNT(*) FROM t WHERE k = 1").unwrap())
                .is_none()
        );
        assert!(metadata_only_plan(&seg, &parse("SELECT SUM(m) FROM t").unwrap()).is_none());
        assert!(metadata_only_plan(&seg, &parse("SELECT MIN(c) FROM t").unwrap()).is_none());
    }

    #[test]
    fn star_tree_conversion() {
        use pinot_common::config::StarTreeConfig;
        let seg = segment(false, false);
        let tree = pinot_startree::build_star_tree(
            &seg,
            &StarTreeConfig {
                dimensions: vec!["k".into(), "c".into()],
                metrics: vec!["m".into()],
                max_leaf_records: 10,
                skip_star_dimensions: vec![],
            },
        )
        .unwrap();
        let handle = SegmentHandle::new(Arc::clone(&seg)).with_star_tree(Arc::new(tree));
        // Convertible: equality + OR on one dim + group by tree dim.
        let q = parse("SELECT SUM(m) FROM t WHERE k = 1 OR k = 2 GROUP BY c").unwrap();
        let (filters, group) = try_star_tree(&handle, &q).unwrap();
        assert_eq!(filters[0], DimFilter::In(vec![1, 2]));
        assert_eq!(filters[1], DimFilter::Any);
        assert_eq!(group, vec![1]);
        assert_eq!(plan_segment(&handle, &q), PlanKind::StarTree);

        // Range predicates expand to id sets.
        let q = parse("SELECT SUM(m) FROM t WHERE k BETWEEN 2 AND 4").unwrap();
        let (filters, _) = try_star_tree(&handle, &q).unwrap();
        assert_eq!(filters[0], DimFilter::In(vec![2, 3, 4]));

        // Not convertible: DISTINCTCOUNT, NOT, non-tree column, selection.
        for q in [
            "SELECT DISTINCTCOUNT(m) FROM t WHERE k = 1",
            "SELECT SUM(m) FROM t WHERE NOT k = 1",
            "SELECT SUM(m) FROM t WHERE m = 5",
            "SELECT SUM(m) FROM t GROUP BY m",
        ] {
            assert!(try_star_tree(&handle, &parse(q).unwrap()).is_none(), "{q}");
        }
        // Cross-dimension OR cannot navigate the tree.
        let q = parse("SELECT SUM(m) FROM t WHERE k = 1 OR c = 'c1'").unwrap();
        assert!(try_star_tree(&handle, &q).is_none());
    }

    #[test]
    fn unordered_evaluation_matches_ordered() {
        for (sorted, inverted) in [(false, false), (true, false), (false, true), (true, true)] {
            let seg = segment(sorted, inverted);
            for q in [
                "SELECT COUNT(*) FROM t WHERE k = 3 AND c = 'c1'",
                "SELECT COUNT(*) FROM t WHERE m > 50 AND k < 5 AND c != 'c0'",
                "SELECT COUNT(*) FROM t WHERE (k = 1 OR k = 2) AND m BETWEEN 10 AND 60",
            ] {
                let pred = filter_of(q);
                let mut s1 = ExecutionStats::default();
                let mut s2 = ExecutionStats::default();
                let ordered =
                    evaluate_filter_with_ordering(&seg, Some(&pred), &mut s1, true).unwrap();
                let unordered =
                    evaluate_filter_with_ordering(&seg, Some(&pred), &mut s2, false).unwrap();
                assert_eq!(docs(&ordered), docs(&unordered), "{q}");
                // The reordered plan never touches more entries in the
                // filter phase than the naive one.
                assert!(
                    s1.num_entries_scanned_in_filter <= s2.num_entries_scanned_in_filter,
                    "{q}: ordered {} vs unordered {}",
                    s1.num_entries_scanned_in_filter,
                    s2.num_entries_scanned_in_filter
                );
            }
        }
    }

    #[test]
    fn contradictory_conjuncts_empty() {
        let seg = segment(true, false);
        let mut stats = ExecutionStats::default();
        let sel = evaluate_filter(
            &seg,
            Some(&filter_of("SELECT COUNT(*) FROM t WHERE k = 1 AND k = 2")),
            &mut stats,
        )
        .unwrap();
        assert!(sel.is_empty());
    }
}
