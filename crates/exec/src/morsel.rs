//! Morsel-driven intra-segment parallelism with a cost-gated fan-out
//! (ISSUE 8, after the morsel scheduling of HyPer and the intra-partition
//! parallel scans of OceanBase).
//!
//! A segment's post-prune [`DocSelection`] is split into *morsels* —
//! contiguous sub-selections of at most `morsel_docs` documents, taken in
//! ascending doc order. Splitting is a pure function of the selection and
//! the morsel size: it never looks at thread counts, queue depths, or the
//! clock, so the partition (and therefore every float accumulation order
//! downstream) is identical on every run and at every pool width.
//!
//! Execution then has two *byte-identical* schedules:
//!
//! * **inline** — the caller thread folds the morsels in index order;
//! * **fan-out** — each morsel becomes a pool task writing into its own
//!   slot (`slots[i]` for morsel `i`), and the caller merges the slots in
//!   ascending morsel index with the commutative/associative partial
//!   merge proven by the PR 6 fold-algebra proptests.
//!
//! Because both schedules produce the same per-morsel partials and merge
//! them in the same fixed order, the cost gate choosing between them is
//! free to use *non-deterministic* signals: estimated work is
//! `docs × columns touched × ns_per_doc`, where `ns_per_doc` is
//! calibrated from the measured `exec.scan_ns_per_doc` histogram. A bad
//! estimate can only cost time, never change bytes.

use crate::batch::ExecOptions;
use crate::selection::{DocSelection, BLOCK_SIZE};
use pinot_bitmap::RoaringBitmap;
use pinot_chaos::{sites, FaultAction, FaultContext, FaultInjector};
use pinot_common::{PinotError, Result};
use pinot_obs::Obs;
use pinot_segment::DocId;
use pinot_taskpool::{Deadline, TaskPool, WorkerSlots};
use std::sync::{Arc, OnceLock};

/// Environment override for the morsel size in documents. Rounded down
/// to a multiple of the BLOCK=1024 decode unit (and clamped to at least
/// one block) so a morsel never splits a decode block.
pub const MORSEL_DOCS_ENV: &str = "PINOT_EXEC_MORSEL_DOCS";

/// Environment override for the fan-out threshold in estimated
/// nanoseconds of scan work.
pub const FANOUT_NS_ENV: &str = "PINOT_EXEC_FANOUT_NS";

/// Default morsel size: 64 decode blocks. Small enough that a 4M-doc
/// segment yields ~61 morsels (good balance even with stealing), large
/// enough that per-task overhead stays ≪ 1% of a morsel's scan time.
pub const DEFAULT_MORSEL_DOCS: usize = 64 * BLOCK_SIZE;

/// Default fan-out threshold: ~2ms of estimated scan work. Below it a
/// query answers faster on the caller thread than the scheduling
/// round-trip costs.
pub const DEFAULT_FANOUT_NS: u64 = 2_000_000;

/// Starting per-doc scan cost until calibration has data.
pub const DEFAULT_NS_PER_DOC: f64 = 4.0;

/// Calibrated `ns_per_doc` is clamped to this range so one wild
/// measurement (page cache miss, CI noise) cannot wedge the gate fully
/// open or shut.
pub const NS_PER_DOC_CLAMP: (f64, f64) = (0.5, 200.0);

/// Round a configured morsel size to the decode-block grid.
pub fn clamp_morsel_docs(docs: usize) -> usize {
    (docs / BLOCK_SIZE).max(1) * BLOCK_SIZE
}

/// Process-wide default morsel size, read once from
/// [`MORSEL_DOCS_ENV`].
pub fn morsel_docs_default() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var(MORSEL_DOCS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(clamp_morsel_docs)
            .unwrap_or(DEFAULT_MORSEL_DOCS)
    })
}

/// Process-wide default fan-out threshold, read once from
/// [`FANOUT_NS_ENV`].
pub fn fanout_ns_default() -> u64 {
    static DEFAULT: OnceLock<u64> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var(FANOUT_NS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_FANOUT_NS)
    })
}

/// The fan-out cost model: estimated work for a scan is
/// `docs × columns × ns_per_doc`, compared against a fixed threshold.
/// `ns_per_doc` starts at [`DEFAULT_NS_PER_DOC`] and is recalibrated by
/// the server from the `exec.scan_ns_per_doc` histogram mean.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    pub ns_per_doc: f64,
    pub fanout_threshold_ns: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            ns_per_doc: DEFAULT_NS_PER_DOC,
            fanout_threshold_ns: fanout_ns_default(),
        }
    }
}

impl CostModel {
    /// Estimated nanoseconds to scan `docs` documents across `cols`
    /// columns.
    pub fn estimate_ns(&self, docs: u64, cols: u64) -> u64 {
        (docs as f64 * cols.max(1) as f64 * self.ns_per_doc) as u64
    }

    /// Whether the estimated work clears the fan-out threshold.
    pub fn should_fan_out(&self, docs: u64, cols: u64) -> bool {
        self.estimate_ns(docs, cols) >= self.fanout_threshold_ns
    }

    /// A copy with `ns_per_doc` updated from a measurement, clamped to
    /// [`NS_PER_DOC_CLAMP`]. Non-finite measurements are ignored.
    pub fn recalibrated(mut self, measured_ns_per_doc: f64) -> CostModel {
        if measured_ns_per_doc.is_finite() && measured_ns_per_doc > 0.0 {
            self.ns_per_doc = measured_ns_per_doc.clamp(NS_PER_DOC_CLAMP.0, NS_PER_DOC_CLAMP.1);
        }
        self
    }
}

/// Parallel-execution context threaded from the server into
/// [`crate::execute_on_segment_with`]. Absent (the default) the scan
/// runs inline; present, multi-morsel scans clearing the cost gate fan
/// out onto `pool`.
#[derive(Clone)]
pub struct ParallelExec {
    pub pool: Arc<TaskPool>,
    /// The broker's scatter deadline: morsels still queued when it
    /// passes are abandoned and the segment fails with a timeout.
    pub deadline: Deadline,
    pub cost: CostModel,
    /// Fault-injection hook for the `exec.morsel` chaos site.
    pub chaos: Option<(Arc<FaultInjector>, FaultContext)>,
}

impl ParallelExec {
    pub fn new(pool: Arc<TaskPool>) -> ParallelExec {
        ParallelExec {
            pool,
            deadline: Deadline::none(),
            cost: CostModel::default(),
            chaos: None,
        }
    }

    pub fn with_deadline(mut self, deadline: Deadline) -> ParallelExec {
        self.deadline = deadline;
        self
    }

    pub fn with_cost(mut self, cost: CostModel) -> ParallelExec {
        self.cost = cost;
        self
    }

    pub fn with_chaos(mut self, injector: Arc<FaultInjector>, ctx: FaultContext) -> ParallelExec {
        self.chaos = Some((injector, ctx));
        self
    }
}

/// Split `selection` into morsels of at most `morsel_docs` documents, in
/// ascending doc order. The result is an exact cover: concatenating the
/// morsels' doc sequences reproduces the original selection's
/// `for_each` order with nothing duplicated or dropped (pinned by the
/// `proptest_morsel` suite). Selections of `morsel_docs` documents or
/// fewer come back as a single morsel.
pub fn split_selection(selection: &DocSelection, morsel_docs: usize) -> Vec<DocSelection> {
    let morsel_docs = morsel_docs.max(1);
    match selection {
        DocSelection::Empty => Vec::new(),
        DocSelection::All(n) => split_range(0, *n, morsel_docs),
        DocSelection::Range(s, e) => split_range(*s, *e, morsel_docs),
        DocSelection::Bitmap(bm) => {
            let total = bm.len() as usize;
            if total <= morsel_docs {
                return vec![selection.clone()];
            }
            let mut out = Vec::with_capacity(total.div_ceil(morsel_docs));
            let mut buf: Vec<DocId> = Vec::with_capacity(morsel_docs.min(total));
            let mut scratch = Vec::new();
            bm.for_each_batch(&mut scratch, |ids| {
                let mut rest = ids;
                while !rest.is_empty() {
                    let take = (morsel_docs - buf.len()).min(rest.len());
                    buf.extend_from_slice(&rest[..take]);
                    rest = &rest[take..];
                    if buf.len() == morsel_docs {
                        let mut part = RoaringBitmap::new();
                        part.append_sorted(&buf);
                        buf.clear();
                        out.push(DocSelection::Bitmap(part));
                    }
                }
            });
            if !buf.is_empty() {
                let mut part = RoaringBitmap::new();
                part.append_sorted(&buf);
                out.push(DocSelection::Bitmap(part));
            }
            out
        }
    }
}

fn split_range(start: DocId, end: DocId, morsel_docs: usize) -> Vec<DocSelection> {
    if end <= start {
        return Vec::new();
    }
    let total = (end - start) as usize;
    if total <= morsel_docs {
        return vec![DocSelection::Range(start, end)];
    }
    let mut out = Vec::with_capacity(total.div_ceil(morsel_docs));
    let mut s = start;
    while s < end {
        let e = end.min(s + morsel_docs as DocId);
        out.push(DocSelection::Range(s, e));
        s = e;
    }
    out
}

/// One morsel's scan output: the shape-specific partial payload plus the
/// integer counters the scan produced. Kept payload-agnostic here so the
/// scheduler below works for every query shape.
pub(crate) struct MorselPartial<P> {
    pub payload: P,
    /// `num_entries_scanned_post_filter` contribution.
    pub entries: u64,
    /// Kernel counters (blocks decoded, docs accumulated).
    pub blocks: u64,
    pub docs: u64,
}

/// Integer scan counters accumulated into per-worker slots on the
/// fan-out path ([`WorkerSlots`]): commutative, so slot order is enough
/// for determinism.
#[derive(Default, Clone, Copy)]
pub(crate) struct ScanCounters {
    pub entries: u64,
    pub blocks: u64,
    pub docs: u64,
    pub stolen: u64,
}

/// Execute `morsels` with `run` (one call per morsel, in any order) and
/// merge the partial payloads **in ascending morsel index** with
/// `merge`. Chooses inline vs fan-out via the cost gate; both schedules
/// are byte-identical by construction. Returns the merged payload plus
/// summed counters.
pub(crate) fn execute_morsels<P, F, M>(
    morsels: &[DocSelection],
    scan_docs: u64,
    cols_touched: u64,
    run: F,
    mut merge: M,
    opts: &ExecOptions,
    obs: Option<&Obs>,
) -> Result<MorselPartial<P>>
where
    P: Send,
    F: Fn(&DocSelection) -> MorselPartial<P> + Sync,
    M: FnMut(&mut P, P) -> Result<()>,
{
    debug_assert!(morsels.len() > 1);
    let fan_out = opts
        .parallel
        .as_ref()
        .filter(|p| p.cost.should_fan_out(scan_docs, cols_touched));

    let Some(par) = fan_out else {
        // Below the gate (or no pool): fold on the caller thread, zero
        // task overhead.
        if let Some(obs) = obs {
            obs.metrics.counter_add("exec.morsels_inline", 1);
        }
        let mut iter = morsels.iter();
        let mut acc = run(iter.next().expect("at least two morsels"));
        for m in iter {
            let part = run(m);
            merge(&mut acc.payload, part.payload)?;
            acc.entries += part.entries;
            acc.blocks += part.blocks;
            acc.docs += part.docs;
        }
        return Ok(acc);
    };

    if let Some(obs) = obs {
        obs.metrics
            .counter_add("exec.morsels_split", morsels.len() as u64);
    }
    let threads = par.pool.threads();
    let slots: Vec<std::sync::Mutex<Option<Result<P>>>> = morsels
        .iter()
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let counters: WorkerSlots<ScanCounters> = WorkerSlots::new(&par.pool);
    par.pool.scope(|scope| {
        let jobs: Vec<_> = morsels
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let slot = &slots[i];
                let counters = &counters;
                let par = &par;
                let run = &run;
                let home = i % threads;
                move || {
                    if let Some((injector, ctx)) = &par.chaos {
                        if let Some(action) = injector.intercept(sites::EXEC_MORSEL, ctx) {
                            match action {
                                FaultAction::Fail(e) => {
                                    *slot.lock().unwrap() = Some(Err(e));
                                    return;
                                }
                                FaultAction::Crash => {
                                    // A morsel cannot unregister a server;
                                    // Crash degrades to a failed scan.
                                    *slot.lock().unwrap() = Some(Err(PinotError::Io(
                                        "morsel crashed (injected)".into(),
                                    )));
                                    return;
                                }
                                FaultAction::Delay(ms) => {
                                    std::thread::sleep(std::time::Duration::from_millis(ms))
                                }
                            }
                        }
                    }
                    let part = run(m);
                    counters.with(|c| {
                        c.entries += part.entries;
                        c.blocks += part.blocks;
                        c.docs += part.docs;
                        if TaskPool::current_worker() != Some(home) {
                            c.stolen += 1;
                        }
                    });
                    *slot.lock().unwrap() = Some(Ok(part.payload));
                }
            })
            .collect();
        scope.spawn_batch_with_deadline(&par.deadline, jobs);
    });

    // Merge in fixed morsel order; per-worker counter slots merge in
    // fixed slot order (both deterministic — the counters are integers
    // and the payload merge is the proven fold algebra).
    let mut merged: Option<P> = None;
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap() {
            Some(Ok(payload)) => match &mut merged {
                None => merged = Some(payload),
                Some(acc) => merge(acc, payload)?,
            },
            Some(Err(e)) => return Err(e),
            None => {
                // The pool abandoned this morsel: the scatter deadline
                // passed while it was queued. Nothing half-executed is
                // merged — the whole segment fails.
                if let Some(obs) = obs {
                    obs.metrics.counter_add("server.exec.deadline_abandoned", 1);
                }
                return Err(PinotError::Timeout(format!(
                    "query deadline elapsed before morsel {i} of {}",
                    morsels.len()
                )));
            }
        }
    }
    let mut acc = MorselPartial {
        payload: merged.expect("non-empty morsel list"),
        entries: 0,
        blocks: 0,
        docs: 0,
    };
    let mut stolen = 0;
    for c in counters.into_slots() {
        acc.entries += c.entries;
        acc.blocks += c.blocks;
        acc.docs += c.docs;
        stolen += c.stolen;
    }
    if let Some(obs) = obs {
        if stolen > 0 {
            obs.metrics.counter_add("exec.morsels_stolen", stolen);
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs_of(sel: &DocSelection) -> Vec<DocId> {
        let mut v = Vec::new();
        sel.for_each(|d| v.push(d));
        v
    }

    #[test]
    fn range_split_is_exact_cover() {
        let sel = DocSelection::All(10_000);
        let morsels = split_selection(&sel, 1024);
        assert_eq!(morsels.len(), 10);
        let concat: Vec<DocId> = morsels.iter().flat_map(docs_of).collect();
        assert_eq!(concat, docs_of(&sel));
    }

    #[test]
    fn small_selection_is_one_morsel() {
        let sel = DocSelection::Range(5, 500);
        assert_eq!(split_selection(&sel, 1024).len(), 1);
        assert_eq!(split_selection(&DocSelection::Empty, 1024).len(), 0);
    }

    #[test]
    fn bitmap_split_preserves_order() {
        let ids: Vec<u32> = (0..5000).map(|i| i * 3).collect();
        let sel = DocSelection::Bitmap(RoaringBitmap::from_sorted(ids.iter().copied()));
        let morsels = split_selection(&sel, 2048);
        assert_eq!(morsels.len(), 3);
        let concat: Vec<DocId> = morsels.iter().flat_map(docs_of).collect();
        assert_eq!(concat, ids);
        // All but the last morsel are exactly full.
        assert!(morsels[..2].iter().all(|m| m.count() == 2048));
    }

    #[test]
    fn cost_model_defaults_gate_fig7_inline_and_large_scans_out() {
        let cost = CostModel {
            ns_per_doc: DEFAULT_NS_PER_DOC,
            fanout_threshold_ns: DEFAULT_FANOUT_NS,
        };
        // fig7 shape: 12.5k-doc segments, few-column point aggregates. A
        // per-segment task's slice stays under the gate → inline, even at
        // the calibration clamp's ceiling of 200ns/doc for one column.
        assert!(!cost.should_fan_out(12_500, 3));
        assert!(!cost
            .recalibrated(NS_PER_DOC_CLAMP.1)
            .should_fan_out(9_000, 1));
        // A single 4M-doc segment scan clears it by ~8×.
        assert!(cost.should_fan_out(4_000_000, 1));
    }

    #[test]
    fn recalibration_clamps() {
        let cost = CostModel::default().recalibrated(10_000.0);
        assert_eq!(cost.ns_per_doc, NS_PER_DOC_CLAMP.1);
        let cost = CostModel::default().recalibrated(0.001);
        assert_eq!(cost.ns_per_doc, NS_PER_DOC_CLAMP.0);
        let cost = CostModel::default().recalibrated(f64::NAN);
        assert_eq!(cost.ns_per_doc, DEFAULT_NS_PER_DOC);
    }

    #[test]
    fn morsel_docs_clamps_to_block_grid() {
        assert_eq!(clamp_morsel_docs(1), BLOCK_SIZE);
        assert_eq!(clamp_morsel_docs(5000), 4 * BLOCK_SIZE);
        assert_eq!(clamp_morsel_docs(65536), 65536);
    }
}
