//! Per-segment query planning and execution (§3.3.4, §4.1–4.3).
//!
//! Query plans are generated *per segment*, because index availability and
//! physical layout differ between segments (Figure 5). For each segment the
//! planner picks, in order of preference:
//!
//! 1. **metadata-only plans** — `SELECT COUNT(*)`/`MIN`/`MAX` without
//!    filters read the answer from segment metadata (§4.1);
//! 2. **star-tree plans** — aggregations whose filters/group-bys land on
//!    tree dimensions run on preaggregated records (§4.3);
//! 3. **index-backed filter plans** — filters compile to [`IdMatcher`]s and
//!    execute against the sorted-column index first (producing one doc
//!    range that subsequent operators evaluate within, §4.2), then bitmap
//!    inverted indexes, then scan fallback;
//! 4. **full scans** for everything else.
//!
//! Results fold into an [`IntermediateResult`] — the same representation a
//! server returns to the broker and the broker merges across servers —
//! then [`finalize`] shapes the client-facing
//! [`pinot_common::query::QueryResult`].

pub mod aggstate;
pub mod batch;
pub mod cost;
pub mod explain;
pub mod key;
pub mod merge;
pub mod morsel;
pub mod planner;
pub mod prune;
pub mod segment_exec;
pub mod selection;

pub use aggstate::AggState;
pub use batch::{batch_default, ExecOptions};
pub use cost::{
    choose_path, estimate_leaf, estimate_predicate, planner_default, AccessPath, LeafEstimate,
    PlannerMode,
};
pub use explain::{explain_segment, render_plan, SegmentExplain};
pub use key::GroupKey;
pub use merge::{collected_profiles, finalize, merge_intermediate};
pub use morsel::{split_selection, CostModel, ParallelExec};
pub use planner::{
    conjunct_order, evaluate_filter_mode, evaluate_filter_planned, plan_segment, ConjunctPlan,
    PlanKind,
};
pub use prune::{
    prune_default, ColumnRange, Prunable, PruneEvaluator, PruneLevel, PruneOutcome,
    PruneStatsSource, ZoneMapStats,
};
pub use segment_exec::{
    execute_on_segment, execute_on_segment_with, IntermediateResult, SegmentHandle,
};
pub use selection::{DocBlock, DocSelection, IdMatcher};
