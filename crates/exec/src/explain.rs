//! EXPLAIN PLAN: per-segment plan decisions without executing.
//!
//! [`explain_segment`] answers, for one segment, every decision the
//! execution path would make — the prune verdict with its level
//! attribution, the [`PlanKind`] chosen, the order `eval_and` would run
//! the filter conjuncts in (with the index class that decided each
//! position), and whether the scan would use the batched or the row
//! kernel. The logic mirrors `execute_on_segment_with` exactly but calls
//! only the planner, so an `EXPLAIN PLAN FOR` statement costs no scan
//! work. `EXPLAIN ANALYZE` instead executes with profiling and renders
//! the measured [`pinot_common::profile::ProfileNode`] tree next to the
//! plan.

use crate::batch::{self, ExecOptions};
use crate::planner::{self, ConjunctPlan, PlanKind};
use crate::prune::{Prunable, PruneEvaluator, PruneLevel};
use crate::segment_exec::SegmentHandle;
use pinot_common::json::Json;
use pinot_common::Result;
use pinot_pql::{Query, SelectList};
use pinot_segment::column::ColumnData;

/// The plan decision tree for one segment, as EXPLAIN renders it.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentExplain {
    pub segment: String,
    pub total_docs: u64,
    /// Prune verdict: `unknown`, `match_all`, `cannot_match:<level>`, or
    /// `off` when pruning is disabled.
    pub prune: String,
    /// Chosen plan; `None` when the prune verdict skips the segment.
    pub plan: Option<PlanKind>,
    /// Filter conjuncts in execution order, each with its chosen access
    /// path (`sorted` | `inverted` | `scan` | `subtree`) and estimated
    /// selectivity. Empty for pruned segments and filterless queries.
    pub predicate_order: Vec<ConjunctPlan>,
    /// Scan operator a raw plan would run: `aggregate` | `group_by` |
    /// `select`.
    pub operator: &'static str,
    /// Kernel a raw plan would use: `batch` | `row`. `None` for
    /// non-raw plans.
    pub kernel: Option<&'static str>,
    /// For consuming segments: the row count of the consistent cut the
    /// plan was made against. `None` for sealed segments. Rendered as
    /// `plan=realtime cut_rows=<n>` so EXPLAIN distinguishes the
    /// realtime path.
    pub realtime_cut_rows: Option<u64>,
}

/// Explain one segment without executing. Mirrors the execute path:
/// prune verdict first (a `MatchAll` strips the filter, which can
/// upgrade the plan to metadata-only), then plan selection, then the
/// kernel choice the raw path would make.
pub fn explain_segment(
    handle: &SegmentHandle,
    query: &Query,
    time_column: Option<&str>,
    opts: &ExecOptions,
) -> Result<SegmentExplain> {
    let segment = &handle.segment;
    for c in query.referenced_columns() {
        segment.column(c)?;
    }

    let prune = if opts.prune_enabled() {
        let evaluator = PruneEvaluator::new(time_column.map(String::from));
        let outcome = evaluator.evaluate(query.filter.as_ref(), &**segment);
        match outcome.prunable {
            Prunable::CannotMatch => format!(
                "cannot_match:{}",
                outcome.level.unwrap_or(PruneLevel::ZoneMap).as_str()
            ),
            Prunable::MatchAll => "match_all".to_string(),
            Prunable::Unknown => "unknown".to_string(),
        }
    } else {
        "off".to_string()
    };

    let operator = match &query.select {
        SelectList::Aggregations(_) if query.group_by.is_empty() => "aggregate",
        SelectList::Aggregations(_) => "group_by",
        _ => "select",
    };

    if prune.starts_with("cannot_match") {
        return Ok(SegmentExplain {
            segment: segment.name().to_string(),
            total_docs: segment.num_docs() as u64,
            prune,
            plan: None,
            predicate_order: Vec::new(),
            operator,
            kernel: None,
            realtime_cut_rows: None,
        });
    }

    // A MatchAll verdict strips the filter before planning, exactly as
    // the server does — COUNT/MIN/MAX-only queries then upgrade to the
    // metadata-only plan.
    let stripped;
    let effective: &Query = if prune == "match_all" && query.filter.is_some() {
        stripped = Query {
            filter: None,
            ..query.clone()
        };
        &stripped
    } else {
        query
    };

    let plan = planner::plan_segment(handle, effective);
    let predicate_order = if plan == PlanKind::Raw {
        planner::conjunct_order(segment, effective.filter.as_ref(), opts.planner_mode())
    } else {
        Vec::new()
    };
    let kernel = (plan == PlanKind::Raw).then(|| {
        if raw_plan_uses_batch(handle, effective, opts) {
            "batch"
        } else {
            "row"
        }
    });

    Ok(SegmentExplain {
        segment: segment.name().to_string(),
        total_docs: segment.num_docs() as u64,
        prune,
        plan: Some(plan),
        predicate_order,
        operator,
        kernel,
        realtime_cut_rows: None,
    })
}

/// Would the raw path's scan use a batched kernel? Replicates the
/// eligibility checks `execute_on_segment_with` makes per select shape.
fn raw_plan_uses_batch(handle: &SegmentHandle, query: &Query, opts: &ExecOptions) -> bool {
    if !opts.batch_enabled() {
        return false;
    }
    let segment = &handle.segment;
    let lookup = |c: &str| segment.column(c);
    match &query.select {
        SelectList::Aggregations(aggs) if query.group_by.is_empty() => {
            let cols: Option<Vec<Option<&ColumnData>>> = aggs
                .iter()
                .map(|a| match a.column.as_deref() {
                    Some(c) => lookup(c).ok().map(Some),
                    None => Some(None),
                })
                .collect();
            cols.is_some_and(|cols| batch::aggregate_eligible(&cols))
        }
        SelectList::Aggregations(aggs) => {
            let group_cols: Option<Vec<&ColumnData>> =
                query.group_by.iter().map(|c| lookup(c).ok()).collect();
            let agg_cols: Option<Vec<Option<&ColumnData>>> = aggs
                .iter()
                .map(|a| match a.column.as_deref() {
                    Some(c) => lookup(c).ok().map(Some),
                    None => Some(None),
                })
                .collect();
            match (group_cols, agg_cols) {
                (Some(g), Some(a)) => batch::group_by_layout(aggs, &g, &a).is_some(),
                _ => false,
            }
        }
        SelectList::Projections(cols) => {
            let cols: Option<Vec<&ColumnData>> = cols.iter().map(|c| lookup(c).ok()).collect();
            cols.is_some_and(|cols| batch::select_eligible(&cols))
        }
        SelectList::Star => {
            let cols: Option<Vec<&ColumnData>> = segment
                .schema()
                .fields()
                .iter()
                .map(|f| lookup(&f.name).ok())
                .collect();
            cols.is_some_and(|cols| batch::select_eligible(&cols))
        }
    }
}

impl SegmentExplain {
    /// Indented text rendering, one segment per block — the unit the
    /// `EXPLAIN PLAN FOR` golden test pins.
    pub fn render_text(&self) -> String {
        let mut line = format!(
            "segment {} [docs={} prune={}",
            self.segment, self.total_docs, self.prune
        );
        match self.plan {
            Some(plan) => {
                match self.realtime_cut_rows {
                    Some(rows) => line.push_str(&format!(
                        " plan=realtime({plan}) cut_rows={rows} operator={}",
                        self.operator
                    )),
                    None => line.push_str(&format!(" plan={plan} operator={}", self.operator)),
                }
                if let Some(k) = self.kernel {
                    line.push_str(&format!(" kernel={k}"));
                }
            }
            None => match self.realtime_cut_rows {
                Some(rows) => {
                    line.push_str(&format!(" plan=realtime(skipped) cut_rows={rows}"));
                }
                None => line.push_str(" plan=skipped"),
            },
        }
        line.push_str("]\n");
        if !self.predicate_order.is_empty() {
            let order: Vec<String> = self
                .predicate_order
                .iter()
                .map(|c| format!("{} ({}, est={:.4})", c.predicate, c.path, c.est_selectivity))
                .collect();
            line.push_str(&format!("  filter order: {}\n", order.join(", ")));
        }
        line
    }

    /// JSON with stable field names (mirrors the text rendering).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![
            ("segment", self.segment.as_str().into()),
            ("total_docs", self.total_docs.into()),
            ("prune", self.prune.as_str().into()),
            (
                "plan",
                match self.plan {
                    Some(p) => p.as_str().into(),
                    None => "skipped".into(),
                },
            ),
            ("operator", self.operator.into()),
        ];
        if let Some(k) = self.kernel {
            pairs.push(("kernel", k.into()));
        }
        if let Some(rows) = self.realtime_cut_rows {
            pairs.push(("realtime", true.into()));
            pairs.push(("cut_rows", rows.into()));
        }
        pairs.push((
            "filter_order",
            Json::Arr(
                self.predicate_order
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("predicate", c.predicate.as_str().into()),
                            ("path", c.path.into()),
                            ("est_selectivity", c.est_selectivity.into()),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::obj(pairs)
    }
}

/// Render a whole EXPLAIN PLAN: header plus per-segment blocks, segments
/// sorted by name for stable output.
pub fn render_plan(query: &Query, mut segments: Vec<SegmentExplain>) -> String {
    segments.sort_by(|a, b| a.segment.cmp(&b.segment));
    let mut out = format!(
        "EXPLAIN PLAN FOR {} segments of {}\n",
        segments.len(),
        query.table
    );
    for s in &segments {
        out.push_str(&s.render_text());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit, Value};
    use pinot_pql::parse;
    use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
    use std::sync::Arc;

    fn handle() -> SegmentHandle {
        let schema = Schema::new(
            "t",
            vec![
                FieldSpec::dimension("country", DataType::String),
                FieldSpec::metric("clicks", DataType::Long),
                FieldSpec::time("day", DataType::Long, TimeUnit::Days),
            ],
        )
        .unwrap();
        let cfg = BuilderConfig::new("seg_a", "t")
            .with_bloom_columns(&["country"])
            .with_inverted_columns(&["country"]);
        let mut b = SegmentBuilder::new(schema, cfg).unwrap();
        for (c, k, d) in [("us", 10i64, 100i64), ("de", 20, 101), ("fr", 30, 102)] {
            b.add(Record::new(vec![
                Value::from(c),
                Value::Long(k),
                Value::Long(d),
            ]))
            .unwrap();
        }
        SegmentHandle::new(Arc::new(b.build().unwrap()))
    }

    fn explain(pql: &str) -> SegmentExplain {
        explain_segment(
            &handle(),
            &parse(pql).unwrap(),
            Some("day"),
            &ExecOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn metadata_only_upgrade_via_match_all() {
        // The filter matches every row, so pruning strips it and the
        // COUNT(*) upgrades to the metadata-only plan.
        let e = explain("SELECT COUNT(*) FROM t WHERE day >= 100");
        assert_eq!(e.prune, "match_all");
        assert_eq!(e.plan, Some(PlanKind::MetadataOnly));
        assert_eq!(e.kernel, None);
        assert!(e.predicate_order.is_empty());
        assert!(e.render_text().contains("plan=metadata_only"));
    }

    #[test]
    fn pruned_segment_reports_level_and_skips_planning() {
        let e = explain("SELECT COUNT(*) FROM t WHERE day > 200");
        assert_eq!(e.prune, "cannot_match:time");
        assert_eq!(e.plan, None);
        assert!(e.render_text().contains("plan=skipped"));
        let e = explain("SELECT SUM(clicks) FROM t WHERE country = 'es'");
        assert_eq!(e.prune, "cannot_match:bloom");
    }

    #[test]
    fn raw_plan_orders_conjuncts_and_picks_kernel() {
        let e = explain("SELECT SUM(clicks) FROM t WHERE clicks > 15 AND country = 'us'");
        assert_eq!(e.plan, Some(PlanKind::Raw));
        assert_eq!(e.operator, "aggregate");
        assert_eq!(e.kernel, Some("batch"));
        // The inverted country leaf runs before the clicks scan leaf,
        // each annotated with its estimated selectivity (country = us
        // matches 1 of 3 docs exactly; clicks > 15 interpolates the
        // [10, 30] zone map).
        assert_eq!(e.predicate_order.len(), 2);
        assert_eq!(e.predicate_order[0].path, "inverted");
        assert!(e.predicate_order[0].predicate.contains("country"));
        assert_eq!(e.predicate_order[1].path, "scan");
        let text = e.render_text();
        assert!(
            text.contains(
                "filter order: country = us (inverted, est=0.3333), clicks > 15 (scan, est=0.7500)"
            ),
            "{text}"
        );
    }

    #[test]
    fn forced_planner_mode_changes_reported_paths() {
        let e = explain_segment(
            &handle(),
            &parse("SELECT SUM(clicks) FROM t WHERE country = 'us'").unwrap(),
            Some("day"),
            &ExecOptions {
                planner: Some(crate::cost::PlannerMode::Scan),
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(e.predicate_order[0].path, "scan");
    }

    #[test]
    fn row_kernel_reported_when_batch_disabled() {
        let e = explain_segment(
            &handle(),
            &parse("SELECT SUM(clicks) FROM t WHERE clicks > 15").unwrap(),
            Some("day"),
            &ExecOptions {
                batch: Some(false),
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(e.kernel, Some("row"));
    }

    #[test]
    fn json_rendering_is_stable() {
        let e = explain("SELECT SUM(clicks) FROM t WHERE country = 'us'");
        let text = e.to_json().emit();
        for field in ["\"segment\"", "\"prune\"", "\"plan\"", "\"filter_order\""] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn realtime_cut_rows_rendered_in_text_and_json() {
        let mut e = explain("SELECT SUM(clicks) FROM t WHERE country = 'us'");
        e.realtime_cut_rows = Some(3);
        let text = e.render_text();
        assert!(text.contains("plan=realtime(raw) cut_rows=3"), "{text}");
        let json = e.to_json().emit();
        assert!(json.contains("\"realtime\":true"), "{json}");
        assert!(json.contains("\"cut_rows\":3"), "{json}");
    }

    #[test]
    fn render_plan_sorts_segments() {
        let q = parse("SELECT COUNT(*) FROM t").unwrap();
        let mut b = explain("SELECT COUNT(*) FROM t");
        b.segment = "seg_b".into();
        let a = explain("SELECT COUNT(*) FROM t");
        let out = render_plan(&q, vec![b, a]);
        let pos_a = out.find("segment seg_a").unwrap();
        let pos_b = out.find("segment seg_b").unwrap();
        assert!(pos_a < pos_b);
    }
}
