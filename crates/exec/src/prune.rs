//! Segment pruning from per-column statistics.
//!
//! A [`PruneEvaluator`] folds a PQL filter tree against a segment's
//! column statistics (min/max zone maps, optional bloom filters) into a
//! three-valued verdict *before* any planning or scanning happens:
//!
//! * [`Prunable::CannotMatch`] — no row can satisfy the filter; the
//!   segment contributes an empty partial with zero plan/scan work;
//! * [`Prunable::MatchAll`] — every row satisfies the filter; the
//!   predicate can be stripped, which lets COUNT/MIN/MAX-only queries
//!   upgrade to the metadata-only plan;
//! * [`Prunable::Unknown`] — the statistics cannot decide; execute
//!   normally.
//!
//! The same fold runs at two levels: servers evaluate against full
//! segment metadata plus bloom filters ([`PruneStatsSource`] is
//! implemented for `ImmutableSegment`), and brokers evaluate against the
//! per-column zone maps the controller publishes into segment metadata
//! ([`ZoneMapStats`]), dropping fully-prunable servers from the scatter
//! set entirely.
//!
//! Soundness: every leaf rule mirrors the execution engine's own value
//! coercion (`Dictionary::id_of` / `id_range`): integer columns compare
//! exactly in i64, float columns compare through the column's width with
//! IEEE total order, and a probe value that cannot coerce into the
//! column's type matches nothing — so `CannotMatch` is never returned
//! for a segment containing a matching row (the proptests pin this
//! against a row-scan oracle), and `MatchAll` is only returned when the
//! zone map proves every single-value row equals the probe.

use pinot_common::{DataType, Value};
use pinot_pql::{CmpOp, Predicate};
use pinot_segment::ImmutableSegment;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Verdict of folding a filter against segment statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prunable {
    /// No row in the segment can match the filter.
    CannotMatch,
    /// Every row in the segment matches the filter.
    MatchAll,
    /// Statistics cannot decide; execute the filter normally.
    Unknown,
}

/// Which statistic level decided a `CannotMatch` (for per-level metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneLevel {
    /// Min/max zone map on the table's time column.
    Time,
    /// Min/max zone map on any other column.
    ZoneMap,
    /// Bloom filter membership.
    Bloom,
}

impl PruneLevel {
    /// Metric name suffix (`prune.<level>_segments`).
    pub fn as_str(self) -> &'static str {
        match self {
            PruneLevel::Time => "time",
            PruneLevel::ZoneMap => "zonemap",
            PruneLevel::Bloom => "bloom",
        }
    }
}

/// Result of one evaluation, with bloom probe accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneOutcome {
    pub prunable: Prunable,
    /// Set when `prunable` is `CannotMatch`.
    pub level: Option<PruneLevel>,
    /// Bloom membership tests performed.
    pub bloom_probes: u64,
    /// Probes that answered "definitely absent".
    pub bloom_negatives: u64,
}

/// Zone-map view of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRange {
    pub data_type: DataType,
    pub min: Value,
    pub max: Value,
    pub single_value: bool,
}

/// Source of per-column statistics for one segment (or one table-level
/// fold of many segments).
pub trait PruneStatsSource {
    /// Min/max zone map for a column; `None` when the column is unknown
    /// or has no statistics (the evaluator then answers `Unknown`).
    fn column_range(&self, column: &str) -> Option<ColumnRange>;

    /// Bloom membership for an exact value; `None` when no filter exists
    /// or the value cannot be probed.
    fn bloom_contains(&self, _column: &str, _value: &Value) -> Option<bool> {
        None
    }
}

impl PruneStatsSource for ImmutableSegment {
    fn column_range(&self, column: &str) -> Option<ColumnRange> {
        let stats = self.metadata().column(column)?;
        Some(ColumnRange {
            data_type: stats.data_type,
            min: stats.min.clone()?,
            max: stats.max.clone()?,
            single_value: stats.single_value,
        })
    }

    fn bloom_contains(&self, column: &str, value: &Value) -> Option<bool> {
        self.column(column).ok()?.bloom_contains(value)
    }
}

/// Broker-side statistics: zone maps reconstructed from the segment
/// metadata JSON the controller publishes. No bloom filters at this
/// level — those live only inside segments.
#[derive(Debug, Clone, Default)]
pub struct ZoneMapStats {
    pub columns: HashMap<String, ColumnRange>,
}

impl PruneStatsSource for ZoneMapStats {
    fn column_range(&self, column: &str) -> Option<ColumnRange> {
        self.columns.get(column).cloned()
    }
}

/// Fraction of a zone map's value interval `[min, max]` that a
/// predicate interval overlaps, assuming values distribute uniformly —
/// the cost model's numeric-range fallback when a column has neither a
/// sorted nor an inverted index ([`crate::cost::estimate_leaf`]). `None`
/// interval ends are unbounded; degenerate or unusable zone maps answer
/// conservatively (everything matches).
pub fn zone_overlap_fraction(min: f64, max: f64, lo: Option<f64>, hi: Option<f64>) -> f64 {
    if !min.is_finite() || !max.is_finite() || min > max {
        return 1.0;
    }
    let lo = lo.unwrap_or(min).max(min);
    let hi = hi.unwrap_or(max).min(max);
    if lo > hi {
        return 0.0;
    }
    if max == min {
        return 1.0;
    }
    ((hi - lo) / (max - min)).clamp(0.0, 1.0)
}

/// Process-wide default for the pruning pipeline, read once from
/// `PINOT_EXEC_PRUNE` (`0` disables pruning at every level).
pub fn prune_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| std::env::var("PINOT_EXEC_PRUNE").map_or(true, |v| v != "0"))
}

/// Folds filter trees against column statistics.
#[derive(Debug, Clone, Default)]
pub struct PruneEvaluator {
    /// Table's time column: `CannotMatch` decided on it counts as
    /// time-level pruning in the metrics.
    time_column: Option<String>,
}

impl PruneEvaluator {
    pub fn new(time_column: Option<String>) -> PruneEvaluator {
        PruneEvaluator { time_column }
    }

    /// Evaluate a filter against one segment's statistics. `None`
    /// filters trivially match every row.
    pub fn evaluate<S: PruneStatsSource + ?Sized>(
        &self,
        filter: Option<&Predicate>,
        stats: &S,
    ) -> PruneOutcome {
        let mut probes = 0u64;
        let mut negatives = 0u64;
        let (prunable, level) = match filter {
            None => (Prunable::MatchAll, None),
            Some(p) => {
                let normalized = crate::planner::normalize_predicate(p);
                self.fold(&normalized, stats, &mut probes, &mut negatives)
            }
        };
        PruneOutcome {
            prunable,
            level: if prunable == Prunable::CannotMatch {
                level
            } else {
                None
            },
            bloom_probes: probes,
            bloom_negatives: negatives,
        }
    }

    fn fold<S: PruneStatsSource + ?Sized>(
        &self,
        pred: &Predicate,
        stats: &S,
        probes: &mut u64,
        negatives: &mut u64,
    ) -> (Prunable, Option<PruneLevel>) {
        match pred {
            Predicate::And(ps) => {
                let mut all_match = true;
                for p in ps {
                    let (v, lvl) = self.fold(p, stats, probes, negatives);
                    match v {
                        Prunable::CannotMatch => return (Prunable::CannotMatch, lvl),
                        Prunable::MatchAll => {}
                        Prunable::Unknown => all_match = false,
                    }
                }
                if all_match && !ps.is_empty() {
                    (Prunable::MatchAll, None)
                } else {
                    (Prunable::Unknown, None)
                }
            }
            Predicate::Or(ps) => {
                let mut all_cannot = true;
                let mut first_level = None;
                for p in ps {
                    let (v, lvl) = self.fold(p, stats, probes, negatives);
                    match v {
                        Prunable::MatchAll => return (Prunable::MatchAll, None),
                        Prunable::CannotMatch => {
                            if first_level.is_none() {
                                first_level = lvl;
                            }
                        }
                        Prunable::Unknown => all_cannot = false,
                    }
                }
                if all_cannot && !ps.is_empty() {
                    (Prunable::CannotMatch, first_level)
                } else {
                    (Prunable::Unknown, None)
                }
            }
            // MatchAll/CannotMatch are exact statements about every row,
            // so negation flips them.
            Predicate::Not(inner) => match self.fold(inner, stats, probes, negatives) {
                (Prunable::MatchAll, _) => (
                    Prunable::CannotMatch,
                    Some(self.level_for(columns_of(inner))),
                ),
                (Prunable::CannotMatch, _) => (Prunable::MatchAll, None),
                (Prunable::Unknown, _) => (Prunable::Unknown, None),
            },
            leaf => self.leaf(leaf, stats, probes, negatives),
        }
    }

    fn level_for(&self, column: Option<&str>) -> PruneLevel {
        match (column, &self.time_column) {
            (Some(c), Some(t)) if c == t => PruneLevel::Time,
            _ => PruneLevel::ZoneMap,
        }
    }

    fn leaf<S: PruneStatsSource + ?Sized>(
        &self,
        leaf: &Predicate,
        stats: &S,
        probes: &mut u64,
        negatives: &mut u64,
    ) -> (Prunable, Option<PruneLevel>) {
        let column = match columns_of(leaf) {
            Some(c) => c,
            None => return (Prunable::Unknown, None),
        };
        let range = match stats.column_range(column) {
            Some(r) => r,
            // Unknown column or no stats: never prune — execution must
            // still surface column-not-found errors and handle empty
            // segments uniformly.
            None => return (Prunable::Unknown, None),
        };
        let zl = self.level_for(Some(column));

        match leaf {
            Predicate::Cmp { op, value, .. } => {
                // A probe that cannot coerce into the column's type
                // matches nothing in the dictionary, whatever the op.
                if !compatible(value, range.data_type) {
                    return (Prunable::CannotMatch, Some(zl));
                }
                let lo = cmp_in_column(value, &range.min, range.data_type);
                let hi = cmp_in_column(value, &range.max, range.data_type);
                let (lo, hi) = match (lo, hi) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return (Prunable::Unknown, None),
                };
                match op {
                    CmpOp::Eq => {
                        if lo == Ordering::Less || hi == Ordering::Greater {
                            return (Prunable::CannotMatch, Some(zl));
                        }
                        if let Some(present) = stats.bloom_contains(column, value) {
                            *probes += 1;
                            if !present {
                                *negatives += 1;
                                return (Prunable::CannotMatch, Some(PruneLevel::Bloom));
                            }
                        }
                        if range.single_value && lo == Ordering::Equal && hi == Ordering::Equal {
                            (Prunable::MatchAll, None)
                        } else {
                            (Prunable::Unknown, None)
                        }
                    }
                    CmpOp::Lt => range_verdict(range.single_value, hi.is_gt(), lo.is_le(), zl),
                    CmpOp::Le => range_verdict(range.single_value, hi.is_ge(), lo.is_lt(), zl),
                    CmpOp::Gt => range_verdict(range.single_value, lo.is_lt(), hi.is_ge(), zl),
                    CmpOp::Ge => range_verdict(range.single_value, lo.is_le(), hi.is_gt(), zl),
                    // `Ne` is rewritten to Not(Eq) by normalization.
                    CmpOp::Ne => (Prunable::Unknown, None),
                }
            }
            Predicate::Between { low, high, .. } => {
                if !compatible(low, range.data_type) || !compatible(high, range.data_type) {
                    return (Prunable::CannotMatch, Some(zl));
                }
                // Inverted bounds match nothing regardless of stats.
                if let Some(Ordering::Greater) = cmp_in_column(low, high, range.data_type) {
                    return (Prunable::CannotMatch, Some(zl));
                }
                let low_vs_max = cmp_in_column(low, &range.max, range.data_type);
                let high_vs_min = cmp_in_column(high, &range.min, range.data_type);
                if low_vs_max == Some(Ordering::Greater) || high_vs_min == Some(Ordering::Less) {
                    return (Prunable::CannotMatch, Some(zl));
                }
                let low_vs_min = cmp_in_column(low, &range.min, range.data_type);
                let high_vs_max = cmp_in_column(high, &range.max, range.data_type);
                if range.single_value
                    && low_vs_min.is_some_and(Ordering::is_le)
                    && high_vs_max.is_some_and(Ordering::is_ge)
                {
                    return (Prunable::MatchAll, None);
                }
                (Prunable::Unknown, None)
            }
            Predicate::In {
                values,
                negated: false,
                ..
            } => {
                let mut all_absent = true;
                let mut used_bloom = false;
                let mut any_covers_all = false;
                for v in values {
                    if !compatible(v, range.data_type) {
                        continue; // matches nothing
                    }
                    let lo = cmp_in_column(v, &range.min, range.data_type);
                    let hi = cmp_in_column(v, &range.max, range.data_type);
                    let outside = lo == Some(Ordering::Less) || hi == Some(Ordering::Greater);
                    if outside {
                        continue;
                    }
                    if let Some(present) = stats.bloom_contains(column, v) {
                        *probes += 1;
                        if !present {
                            *negatives += 1;
                            used_bloom = true;
                            continue;
                        }
                    }
                    all_absent = false;
                    if range.single_value
                        && lo == Some(Ordering::Equal)
                        && hi == Some(Ordering::Equal)
                    {
                        any_covers_all = true;
                    }
                }
                if all_absent {
                    let level = if used_bloom { PruneLevel::Bloom } else { zl };
                    (Prunable::CannotMatch, Some(level))
                } else if any_covers_all {
                    (Prunable::MatchAll, None)
                } else {
                    (Prunable::Unknown, None)
                }
            }
            // Negated IN is rewritten to Not(In) by normalization.
            _ => (Prunable::Unknown, None),
        }
    }
}

/// `CannotMatch`/`MatchAll`/`Unknown` for a one-sided range predicate:
/// `all` is "the whole zone map satisfies the op", `none` is "no value
/// can satisfy it".
fn range_verdict(
    single_value: bool,
    all: bool,
    none: bool,
    level: PruneLevel,
) -> (Prunable, Option<PruneLevel>) {
    if none {
        (Prunable::CannotMatch, Some(level))
    } else if all && single_value {
        (Prunable::MatchAll, None)
    } else {
        (Prunable::Unknown, None)
    }
}

/// The single column a leaf predicate constrains.
fn columns_of(pred: &Predicate) -> Option<&str> {
    match pred {
        Predicate::Cmp { column, .. }
        | Predicate::In { column, .. }
        | Predicate::Between { column, .. } => Some(column),
        _ => None,
    }
}

/// Can `value` coerce into a column of `data_type` at all? Mirrors
/// `Dictionary::id_of`: a `false` answer means the engine matches
/// nothing for this probe.
fn compatible(value: &Value, data_type: DataType) -> bool {
    match data_type {
        DataType::Int => value
            .as_i64()
            .is_some_and(|x| x >= i32::MIN as i64 && x <= i32::MAX as i64),
        DataType::Long => value.as_i64().is_some(),
        DataType::Float | DataType::Double => value.as_f64().is_some(),
        DataType::String => value.as_str().is_some(),
        DataType::Boolean => matches!(value, Value::Boolean(_)),
    }
}

/// Compare a probe value against a zone-map bound *in the column's own
/// value space*, exactly as the dictionary would: integers compare in
/// i64, floats through the column's width with IEEE total order,
/// strings lexicographically.
fn cmp_in_column(probe: &Value, bound: &Value, data_type: DataType) -> Option<Ordering> {
    match data_type {
        DataType::Int | DataType::Long | DataType::Boolean => {
            let a = probe.as_i64()?;
            let b = bound.as_i64()?;
            Some(a.cmp(&b))
        }
        DataType::Float => {
            let a = probe.as_f64()? as f32;
            let b = bound.as_f64()? as f32;
            Some(a.total_cmp(&b))
        }
        DataType::Double => {
            let a = probe.as_f64()?;
            let b = bound.as_f64()?;
            Some(a.total_cmp(&b))
        }
        DataType::String => Some(probe.as_str()?.cmp(bound.as_str()?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_common::{DataType, FieldSpec, Record, Schema, TimeUnit};
    use pinot_pql::parse;
    use pinot_segment::builder::{BuilderConfig, SegmentBuilder};

    fn segment() -> ImmutableSegment {
        let schema = Schema::new(
            "t",
            vec![
                FieldSpec::dimension("country", DataType::String),
                FieldSpec::metric("clicks", DataType::Long),
                FieldSpec::time("day", DataType::Long, TimeUnit::Days),
            ],
        )
        .unwrap();
        let cfg = BuilderConfig::new("s", "t").with_bloom_columns(&["country"]);
        let mut b = SegmentBuilder::new(schema, cfg).unwrap();
        for (c, k, d) in [
            ("us", 10i64, 100i64),
            ("de", 20, 101),
            ("us", 30, 102),
            ("fr", 40, 103),
        ] {
            b.add(Record::new(vec![
                Value::from(c),
                Value::Long(k),
                Value::Long(d),
            ]))
            .unwrap();
        }
        b.build().unwrap()
    }

    fn verdict(seg: &ImmutableSegment, pql: &str) -> PruneOutcome {
        let ev = PruneEvaluator::new(Some("day".into()));
        let q = parse(pql).unwrap();
        ev.evaluate(q.filter.as_ref(), seg)
    }

    #[test]
    fn zone_map_decides_ranges() {
        let seg = segment();
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE clicks > 1000");
        assert_eq!(out.prunable, Prunable::CannotMatch);
        assert_eq!(out.level, Some(PruneLevel::ZoneMap));
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE clicks >= 10");
        assert_eq!(out.prunable, Prunable::MatchAll);
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE clicks > 15");
        assert_eq!(out.prunable, Prunable::Unknown);
    }

    #[test]
    fn time_column_prunes_report_time_level() {
        let seg = segment();
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE day > 200");
        assert_eq!(out.prunable, Prunable::CannotMatch);
        assert_eq!(out.level, Some(PruneLevel::Time));
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE day BETWEEN 100 AND 103");
        assert_eq!(out.prunable, Prunable::MatchAll);
    }

    #[test]
    fn bloom_catches_in_range_misses() {
        let seg = segment();
        // "es" sorts inside ["de", "us"], so only the bloom can prune it.
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE country = 'es'");
        assert_eq!(out.prunable, Prunable::CannotMatch);
        assert_eq!(out.level, Some(PruneLevel::Bloom));
        assert_eq!(out.bloom_probes, 1);
        assert_eq!(out.bloom_negatives, 1);
        // A present value probes positive and stays Unknown.
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE country = 'de'");
        assert_eq!(out.prunable, Prunable::Unknown);
        assert_eq!(out.bloom_probes, 1);
        assert_eq!(out.bloom_negatives, 0);
    }

    #[test]
    fn boolean_composition_follows_the_lattice() {
        let seg = segment();
        // AND: one CannotMatch branch decides.
        let out = verdict(
            &seg,
            "SELECT COUNT(*) FROM t WHERE country = 'us' AND day > 200",
        );
        assert_eq!(out.prunable, Prunable::CannotMatch);
        assert_eq!(out.level, Some(PruneLevel::Time));
        // OR: all branches must be CannotMatch.
        let out = verdict(
            &seg,
            "SELECT COUNT(*) FROM t WHERE clicks > 1000 OR day > 200",
        );
        assert_eq!(out.prunable, Prunable::CannotMatch);
        let out = verdict(
            &seg,
            "SELECT COUNT(*) FROM t WHERE clicks > 1000 OR country = 'us'",
        );
        assert_eq!(out.prunable, Prunable::Unknown);
        // NOT flips the exact verdicts.
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE NOT day > 200");
        assert_eq!(out.prunable, Prunable::MatchAll);
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE NOT clicks >= 10");
        assert_eq!(out.prunable, Prunable::CannotMatch);
        // Ne normalizes through Not.
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE day != 50");
        assert_eq!(out.prunable, Prunable::MatchAll);
    }

    #[test]
    fn in_lists_prune_value_by_value() {
        let seg = segment();
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE country IN ('aa', 'zz')");
        assert_eq!(out.prunable, Prunable::CannotMatch);
        assert_eq!(out.level, Some(PruneLevel::ZoneMap));
        // In-range misses need the bloom.
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE country IN ('es', 'it')");
        assert_eq!(out.prunable, Prunable::CannotMatch);
        assert_eq!(out.level, Some(PruneLevel::Bloom));
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE country IN ('us', 'zz')");
        assert_eq!(out.prunable, Prunable::Unknown);
    }

    #[test]
    fn unknown_columns_and_missing_stats_never_prune() {
        let seg = segment();
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE nosuch = 1");
        assert_eq!(out.prunable, Prunable::Unknown);
    }

    #[test]
    fn incompatible_probe_types_cannot_match() {
        let seg = segment();
        // String probe on a numeric column matches nothing in the engine.
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE clicks = 'ten'");
        assert_eq!(out.prunable, Prunable::CannotMatch);
        // Float probe on an integer column likewise.
        let out = verdict(&seg, "SELECT COUNT(*) FROM t WHERE clicks = 10.5");
        assert_eq!(out.prunable, Prunable::CannotMatch);
    }

    #[test]
    fn empty_filter_matches_all() {
        let seg = segment();
        let out = verdict(&seg, "SELECT COUNT(*) FROM t");
        assert_eq!(out.prunable, Prunable::MatchAll);
    }

    #[test]
    fn zone_map_stats_source_for_broker() {
        let mut zm = ZoneMapStats::default();
        zm.columns.insert(
            "day".into(),
            ColumnRange {
                data_type: DataType::Long,
                min: Value::Long(100),
                max: Value::Long(110),
                single_value: true,
            },
        );
        let ev = PruneEvaluator::new(Some("day".into()));
        let q = parse("SELECT COUNT(*) FROM t WHERE day = 300").unwrap();
        let out = ev.evaluate(q.filter.as_ref(), &zm);
        assert_eq!(out.prunable, Prunable::CannotMatch);
        assert_eq!(out.level, Some(PruneLevel::Time));
        // Columns absent from the zone maps stay Unknown.
        let q = parse("SELECT COUNT(*) FROM t WHERE other = 1").unwrap();
        assert_eq!(
            ev.evaluate(q.filter.as_ref(), &zm).prunable,
            Prunable::Unknown
        );
    }
}
