//! Batched (vectorized) execution kernels.
//!
//! The row path materializes an owned `Value` per doc per column; these
//! kernels instead decode [`BLOCK_SIZE`]-doc blocks of dictionary ids
//! ([`ForwardIndex::read_block`]) and stay in id space until
//! finalization, paying one dictionary lookup per *distinct id* instead
//! of one per doc:
//!
//! * aggregations accumulate over decoded id blocks through a
//!   dict-id → f64 lookup table built once per (segment, column);
//! * single-value group-bys hash a packed composite key — the
//!   per-column dict ids bit-packed into one u64 — and materialize
//!   group values from the dictionaries only when the map is converted
//!   to [`GroupKey`]s for merging;
//! * projections decode id blocks and translate ids per row.
//!
//! Every kernel replicates the row path's observable semantics exactly:
//! string columns contribute nothing to numeric aggregates (the lut is
//! `None`, mirroring `numeric() == None`), accumulation happens in
//! ascending doc order so float sums are bit-identical, and the stats
//! count the same entries. Queries the kernels cannot serve
//! (multi-value columns, DISTINCTCOUNT group-bys, composite keys wider
//! than 64 bits) fall back to the row path, and `PINOT_EXEC_BATCH=0`
//! forces it globally — the differential suite asserts the two engines
//! are byte-identical.

use crate::aggstate::AggState;
use crate::key::{GroupKey, GroupValue};
use crate::selection::{DocBlock, DocSelection};
use pinot_common::query::ExecutionStats;
use pinot_common::Value;
use pinot_obs::Obs;
use pinot_pql::{AggFunction, AggregateExpr};
use pinot_segment::bitpack::bits_needed;
use pinot_segment::column::ColumnData;
use pinot_segment::DictId;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Runtime switches for per-segment execution, threaded from the server
/// (or cluster config) down to the kernels.
#[derive(Clone, Default)]
pub struct ExecOptions {
    /// Use the batched kernels where they apply. `None` defers to the
    /// `PINOT_EXEC_BATCH` env default (on unless set to `0`).
    pub batch: Option<bool>,
    /// Evaluate segment statistics (zone maps + blooms) before planning.
    /// `None` defers to the `PINOT_EXEC_PRUNE` env default (on unless
    /// set to `0`).
    pub prune: Option<bool>,
    /// Metrics sink for kernel counters; optional so tests and the
    /// baseline engine can run without one.
    pub obs: Option<Arc<Obs>>,
    /// Collect a per-operator [`pinot_common::profile::ProfileNode`] tree
    /// alongside the result. Off by default so the unprofiled path stays
    /// untimed; profiling never changes the result payload or stats.
    pub profile: bool,
    /// With `profile`, also collect the per-conjunct access-path report
    /// (chosen path, estimated vs actual docs) rendered by `EXPLAIN
    /// ANALYZE`. Off for plain profiled execution: the report costs an
    /// allocation per filter leaf per segment, which would eat the
    /// profiling plane's overhead budget on hot queries.
    pub analyze: bool,
    /// Morsel size in documents for intra-segment splitting. `None`
    /// defers to the `PINOT_EXEC_MORSEL_DOCS` env default. The split is
    /// a pure function of (selection, morsel size) — see
    /// [`crate::morsel`] — so this knob changes bytes only through the
    /// deterministic partition, never through scheduling.
    pub morsel_docs: Option<usize>,
    /// Pool + deadline + cost gate for morsel fan-out. `None` (the
    /// default) executes morsels inline on the caller thread; results
    /// are byte-identical either way.
    pub parallel: Option<crate::morsel::ParallelExec>,
    /// Access-path strategy for filter leaves. `None` defers to the
    /// `PINOT_EXEC_PLANNER` env default (auto). Every mode yields
    /// byte-identical results; the forced modes exist so tests and the
    /// planner bench can pin a single strategy.
    pub planner: Option<crate::cost::PlannerMode>,
}

impl ExecOptions {
    pub fn batch_enabled(&self) -> bool {
        self.batch.unwrap_or_else(batch_default)
    }

    pub fn planner_mode(&self) -> crate::cost::PlannerMode {
        self.planner.unwrap_or_else(crate::cost::planner_default)
    }

    pub fn prune_enabled(&self) -> bool {
        self.prune.unwrap_or_else(crate::prune::prune_default)
    }

    pub fn morsel_docs(&self) -> usize {
        self.morsel_docs
            .map(crate::morsel::clamp_morsel_docs)
            .unwrap_or_else(crate::morsel::morsel_docs_default)
    }
}

/// Process-wide default for the batch path, read once from
/// `PINOT_EXEC_BATCH` (`0` forces the legacy row path).
pub fn batch_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| std::env::var("PINOT_EXEC_BATCH").map_or(true, |v| v != "0"))
}

/// Kernel counters for one segment execution, flushed to obs afterwards.
#[derive(Default)]
pub(crate) struct KernelStats {
    pub blocks: u64,
    pub docs: u64,
}

impl KernelStats {
    pub fn observe(&mut self, block: &DocBlock<'_>) {
        self.blocks += 1;
        self.docs += block.len() as u64;
    }

    /// Record this execution's kernel counters: blocks decoded, docs per
    /// block (fill), and scan cost per doc.
    pub fn flush(&self, obs: &Obs, batch: bool, elapsed_ns: u64) {
        obs.metrics.counter_add(
            if batch {
                "exec.batch_segments"
            } else {
                "exec.row_segments"
            },
            1,
        );
        if self.blocks == 0 {
            return;
        }
        obs.metrics.counter_add("exec.blocks_decoded", self.blocks);
        obs.metrics.counter_add("exec.block_docs", self.docs);
        obs.metrics
            .gauge_set("exec.block_fill_avg", (self.docs / self.blocks) as i64);
        // Calibration sample for the fan-out cost gate. Tiny scans are
        // dominated by fixed per-scan setup, so (elapsed / docs) at small
        // doc counts wildly overstates the *marginal* cost a fan-out
        // decision cares about; only scans spanning several full blocks
        // contribute.
        if self.docs >= 8 * crate::selection::BLOCK_SIZE as u64 {
            obs.metrics.observe_ms(
                "exec.scan_ns_per_doc",
                elapsed_ns as f64 / self.docs.max(1) as f64,
            );
        }
    }
}

/// Decode one block of dict ids for a single-value column into `scratch`.
#[inline]
pub(crate) fn decode_block(col: &ColumnData, block: &DocBlock<'_>, scratch: &mut Vec<DictId>) {
    scratch.clear();
    match block {
        DocBlock::Run(s, e) => {
            scratch.resize((*e - *s) as usize, 0);
            col.forward.read_block(*s, scratch);
        }
        DocBlock::Ids(ids) => scratch.extend(ids.iter().map(|&d| col.forward.get(d))),
    }
}

/// Dict-id → f64 table for one column, `None` for string dictionaries —
/// exactly the ids the row path's `numeric()` skips.
fn numeric_lut(col: &ColumnData) -> Option<Vec<f64>> {
    let card = col.dictionary.cardinality();
    if card == 0 {
        // Empty dictionary: no doc can reference an id either way.
        return Some(Vec::new());
    }
    col.dictionary.numeric_of(0)?;
    Some(
        (0..card as DictId)
            .map(|id| {
                col.dictionary
                    .numeric_of(id)
                    .expect("dictionary values share one type")
            })
            .collect(),
    )
}

/// One distinct aggregation column: shared decode scratch + lut, so two
/// aggregations over the same column decode it once per block.
struct UniqCol<'a> {
    col: &'a ColumnData,
    lut: Option<Vec<f64>>,
    ids: Vec<DictId>,
}

/// Per-aggregation dispatch: which unique column feeds it, if any.
enum AggSource {
    /// COUNT(*)-style: no column, the row path feeds it 0.0 per doc.
    NoColumn,
    /// Index into the unique-column table.
    Column(usize),
}

fn unique_columns<'a>(cols: &[Option<&'a ColumnData>]) -> (Vec<UniqCol<'a>>, Vec<AggSource>) {
    let mut uniq: Vec<UniqCol<'a>> = Vec::new();
    let mut sources = Vec::with_capacity(cols.len());
    for col in cols {
        match col {
            None => sources.push(AggSource::NoColumn),
            Some(col) => {
                let slot = uniq
                    .iter()
                    .position(|u| u.col.spec.name == col.spec.name)
                    .unwrap_or_else(|| {
                        uniq.push(UniqCol {
                            col,
                            lut: numeric_lut(col),
                            ids: Vec::new(),
                        });
                        uniq.len() - 1
                    });
                sources.push(AggSource::Column(slot));
            }
        }
    }
    (uniq, sources)
}

/// `accept_numeric(0.0)` repeated `n` times, collapsed. Only ever fed
/// zeros (column-less aggregations), so the float results are exact.
fn accept_zero_repeated(state: &mut AggState, n: u64) {
    if n == 0 {
        return;
    }
    match state {
        AggState::Count(c) => *c += n,
        AggState::Sum(_) => {} // += 0.0, n times
        AggState::Min(m) => *m = m.min(0.0),
        AggState::Max(m) => *m = m.max(0.0),
        AggState::Avg { count, .. } => *count += n, // sum += 0.0
        AggState::Distinct(set) => {
            set.insert(GroupValue::from_value(&Value::Double(0.0)));
        }
    }
}

/// Accumulate one decoded id block into a state through the column lut.
/// Additions run in ascending doc order, so float results match the row
/// path bit for bit.
#[inline]
fn accumulate_block(state: &mut AggState, lut: &[f64], ids: &[DictId]) {
    match state {
        AggState::Count(n) => *n += ids.len() as u64,
        AggState::Sum(s) => {
            for &id in ids {
                *s += lut[id as usize];
            }
        }
        AggState::Min(m) => {
            for &id in ids {
                *m = m.min(lut[id as usize]);
            }
        }
        AggState::Max(m) => {
            for &id in ids {
                *m = m.max(lut[id as usize]);
            }
        }
        AggState::Avg { sum, count } => {
            for &id in ids {
                *sum += lut[id as usize];
            }
            *count += ids.len() as u64;
        }
        AggState::Distinct(_) => unreachable!("distinct accumulates in id space"),
    }
}

/// Can the batched ungrouped-aggregation kernel serve these columns?
pub(crate) fn aggregate_eligible(cols: &[Option<&ColumnData>]) -> bool {
    cols.iter()
        .all(|c| c.is_none_or(|c| c.forward.is_single_value()))
}

/// Batched ungrouped aggregation: SUM/MIN/MAX/COUNT/AVG accumulate over
/// decoded id blocks through the column lut; DISTINCTCOUNT marks a
/// per-id seen table and materializes values once at the end.
pub(crate) fn aggregate_selection_batch(
    aggs: &[AggregateExpr],
    cols: &[Option<&ColumnData>],
    selection: &DocSelection,
    stats: &mut ExecutionStats,
    kstats: &mut KernelStats,
) -> Vec<AggState> {
    let mut states: Vec<AggState> = aggs.iter().map(|a| AggState::new(a.function)).collect();
    let (mut uniq, sources) = unique_columns(cols);
    // Per-aggregation seen table for DISTINCTCOUNT (id space).
    let mut seen: Vec<Vec<bool>> = aggs
        .iter()
        .zip(cols)
        .map(|(a, c)| match (a.function, c) {
            (AggFunction::DistinctCount, Some(c)) => vec![false; c.dictionary.cardinality()],
            _ => Vec::new(),
        })
        .collect();
    let mut entries = 0u64;
    selection.for_each_block(|block| {
        kstats.observe(&block);
        let len = block.len() as u64;
        for u in &mut uniq {
            decode_block(u.col, &block, &mut u.ids);
        }
        for (i, state) in states.iter_mut().enumerate() {
            match sources[i] {
                AggSource::NoColumn => accept_zero_repeated(state, len),
                AggSource::Column(slot) => {
                    let u = &uniq[slot];
                    entries += len;
                    if matches!(state, AggState::Distinct(_)) {
                        let seen = &mut seen[i];
                        for &id in &u.ids {
                            seen[id as usize] = true;
                        }
                    } else if let Some(lut) = &u.lut {
                        accumulate_block(state, lut, &u.ids);
                    }
                }
            }
        }
    });
    // Late materialization for DISTINCTCOUNT: one dictionary lookup per
    // distinct id actually observed.
    for (i, state) in states.iter_mut().enumerate() {
        if let AggSource::Column(slot) = sources[i] {
            if matches!(state, AggState::Distinct(_)) {
                let dict = &uniq[slot].col.dictionary;
                for (id, hit) in seen[i].iter().enumerate() {
                    if *hit {
                        state.accept_value(&dict.value_of(id as DictId));
                    }
                }
            }
        }
    }
    stats.num_entries_scanned_post_filter += entries;
    states
}

/// Layout of the packed composite group key: per-column bit offsets and
/// masks inside one u64.
pub(crate) struct PackedKeyLayout {
    shifts: Vec<u32>,
    masks: Vec<u64>,
}

/// Decide whether the packed-key group-by kernel can serve this query:
/// single-value columns only, no DISTINCTCOUNT, and the per-column id
/// widths must fit one u64. `None` falls back to the `GroupKey` path.
pub(crate) fn group_by_layout(
    aggs: &[AggregateExpr],
    group_cols: &[&ColumnData],
    agg_cols: &[Option<&ColumnData>],
) -> Option<PackedKeyLayout> {
    if aggs
        .iter()
        .any(|a| a.function == AggFunction::DistinctCount)
    {
        return None;
    }
    if agg_cols
        .iter()
        .any(|c| c.is_some_and(|c| !c.forward.is_single_value()))
    {
        return None;
    }
    let mut shifts = Vec::with_capacity(group_cols.len());
    let mut masks = Vec::with_capacity(group_cols.len());
    let mut used = 0u32;
    for col in group_cols {
        if !col.forward.is_single_value() {
            return None;
        }
        let max_id = col.dictionary.cardinality().saturating_sub(1) as u32;
        let bits = u32::from(bits_needed(max_id));
        if used + bits > 64 {
            return None; // cardinalities too wide for one u64
        }
        shifts.push(used);
        masks.push(if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        });
        used += bits;
    }
    Some(PackedKeyLayout { shifts, masks })
}

/// Batched single-value group-by: hash a packed u64 of dict ids per doc,
/// accumulate through column luts, and translate keys to `GroupKey`s
/// only once per group at the end.
pub(crate) fn group_by_selection_batch(
    aggs: &[AggregateExpr],
    group_cols: &[&ColumnData],
    agg_cols: &[Option<&ColumnData>],
    layout: &PackedKeyLayout,
    selection: &DocSelection,
    stats: &mut ExecutionStats,
    kstats: &mut KernelStats,
) -> HashMap<GroupKey, Vec<AggState>> {
    let (mut uniq, sources) = unique_columns(agg_cols);
    let mut packed: HashMap<u64, Vec<AggState>> = HashMap::new();
    let mut group_ids: Vec<Vec<DictId>> = vec![Vec::new(); group_cols.len()];
    let mut keys: Vec<u64> = Vec::new();
    let mut docs = 0u64;
    selection.for_each_block(|block| {
        kstats.observe(&block);
        let len = block.len();
        docs += len as u64;
        for (col, ids) in group_cols.iter().zip(&mut group_ids) {
            decode_block(col, &block, ids);
        }
        keys.clear();
        keys.resize(len, 0);
        for (ids, &shift) in group_ids.iter().zip(&layout.shifts) {
            for (key, &id) in keys.iter_mut().zip(ids) {
                *key |= (id as u64) << shift;
            }
        }
        for u in &mut uniq {
            decode_block(u.col, &block, &mut u.ids);
        }
        for (row, &key) in keys.iter().enumerate() {
            let states = packed
                .entry(key)
                .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.function)).collect());
            for (state, source) in states.iter_mut().zip(&sources) {
                match source {
                    AggSource::NoColumn => accept_zero_repeated(state, 1),
                    AggSource::Column(slot) => {
                        let u = &uniq[*slot];
                        if let Some(lut) = &u.lut {
                            state.accept_numeric(lut[u.ids[row] as usize]);
                        }
                    }
                }
            }
        }
    });
    // Each (doc, column) read counts once — same rule as the row path.
    let per_doc = (group_cols.len() + agg_cols.iter().filter(|c| c.is_some()).count()) as u64;
    stats.num_entries_scanned_post_filter += docs * per_doc;

    // Late materialization: unpack ids from each composite key and look
    // the group values up once per *group*, not once per doc.
    let mut out: HashMap<GroupKey, Vec<AggState>> = HashMap::with_capacity(packed.len());
    for (key, states) in packed {
        let group_key: GroupKey = group_cols
            .iter()
            .enumerate()
            .map(|(ci, col)| {
                let id = ((key >> layout.shifts[ci]) & layout.masks[ci]) as DictId;
                GroupValue::from_value(&col.dictionary.value_of(id))
            })
            .collect();
        out.insert(group_key, states);
    }
    out
}

/// Can the batched projection kernel serve these columns?
pub(crate) fn select_eligible(cols: &[&ColumnData]) -> bool {
    cols.iter().all(|c| c.forward.is_single_value())
}

/// Batched projection: decode id blocks per column, then translate ids
/// row by row up to the limit.
pub(crate) fn select_rows_batch(
    cols: &[&ColumnData],
    selection: &DocSelection,
    limit: usize,
    stats: &mut ExecutionStats,
    kstats: &mut KernelStats,
) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut scratch: Vec<Vec<DictId>> = vec![Vec::new(); cols.len()];
    selection.for_each_block(|block| {
        if rows.len() >= limit {
            return;
        }
        kstats.observe(&block);
        for (col, ids) in cols.iter().zip(&mut scratch) {
            decode_block(col, &block, ids);
        }
        let take = (limit - rows.len()).min(block.len());
        for row in 0..take {
            rows.push(
                cols.iter()
                    .zip(&scratch)
                    .map(|(col, ids)| col.dictionary.value_of(ids[row]))
                    .collect(),
            );
        }
    });
    stats.num_entries_scanned_post_filter += (rows.len() * cols.len()) as u64;
    rows
}
