//! Hashable group-by keys.
//!
//! `Value` is only `PartialEq` (floats), so group-by maps key on
//! [`GroupValue`], a canonical, hashable projection of scalar values.
//! Floats key on their bit pattern under total order (NaN groups with NaN).

use pinot_common::Value;

/// One group-by key component.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupValue {
    Long(i64),
    Str(String),
    Bool(bool),
    /// f64 keyed by its total-order bit pattern.
    F64(u64),
    Null,
}

impl GroupValue {
    pub fn from_value(v: &Value) -> GroupValue {
        match v {
            Value::Int(x) => GroupValue::Long(*x as i64),
            Value::Long(x) => GroupValue::Long(*x),
            Value::Float(x) => GroupValue::F64(canonical_f64_bits(*x as f64)),
            Value::Double(x) => GroupValue::F64(canonical_f64_bits(*x)),
            Value::String(s) => GroupValue::Str(s.clone()),
            Value::Boolean(b) => GroupValue::Bool(*b),
            // Multi-value cells are exploded before keying; a whole-array
            // key would be a bug upstream.
            Value::IntArray(_) | Value::LongArray(_) | Value::StringArray(_) => {
                GroupValue::Str(v.to_string())
            }
            Value::Null => GroupValue::Null,
        }
    }

    pub fn to_value(&self) -> Value {
        match self {
            GroupValue::Long(x) => Value::Long(*x),
            GroupValue::Str(s) => Value::String(s.clone()),
            GroupValue::Bool(b) => Value::Boolean(*b),
            GroupValue::F64(bits) => Value::Double(f64::from_bits(*bits)),
            GroupValue::Null => Value::Null,
        }
    }
}

fn canonical_f64_bits(x: f64) -> u64 {
    // Collapse all NaNs and the two zeros so equal-looking values group
    // together.
    if x.is_nan() {
        f64::NAN.to_bits()
    } else if x == 0.0 {
        0f64.to_bits()
    } else {
        x.to_bits()
    }
}

/// A full group-by key (one component per group column).
pub type GroupKey = Vec<GroupValue>;

/// Build a key from values.
pub fn key_of(values: &[Value]) -> GroupKey {
    values.iter().map(GroupValue::from_value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trip() {
        for v in [
            Value::Long(5),
            Value::String("x".into()),
            Value::Boolean(true),
            Value::Double(2.5),
        ] {
            assert_eq!(GroupValue::from_value(&v).to_value(), v);
        }
        // Int widens to Long on the way back (canonical form).
        assert_eq!(
            GroupValue::from_value(&Value::Int(3)).to_value(),
            Value::Long(3)
        );
    }

    #[test]
    fn zeros_and_nans_group_together() {
        let a = GroupValue::from_value(&Value::Double(0.0));
        let b = GroupValue::from_value(&Value::Double(-0.0));
        assert_eq!(a, b);
        let n1 = GroupValue::from_value(&Value::Double(f64::NAN));
        let n2 = GroupValue::from_value(&Value::Double(-f64::NAN));
        assert_eq!(n1, n2);
    }

    #[test]
    fn keys_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        set.insert(key_of(&[Value::Long(1), Value::from("a")]));
        set.insert(key_of(&[Value::Long(1), Value::from("b")]));
        set.insert(key_of(&[Value::Long(1), Value::from("a")]));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn int_and_long_same_key() {
        assert_eq!(
            GroupValue::from_value(&Value::Int(7)),
            GroupValue::from_value(&Value::Long(7))
        );
    }
}
