//! Property tests for the profile-merge algebra (ISSUE 6 satellite).
//!
//! [`ProfileNode::fold`] is what lets servers summarise segment profiles
//! and the broker merge hybrid-table halves in whatever order partials
//! arrive: it must be commutative and associative up to the summary
//! representation (names stripped, children keyed and sorted by
//! (operator, plan_kind, prune, kernel)). `aggregate_segment_profiles`
//! must preserve every counter while capping how many exact per-segment
//! nodes survive.

use pinot_common::profile::{aggregate_segment_profiles, ProfileNode};
use proptest::prelude::*;

/// A segment profile in one of the shapes real executions produce:
/// raw/batch, raw/row, star-tree, zonemap-pruned, metadata-only.
type Desc = (usize, u64, u64, u64, u64);

fn node_from(desc: &Desc, i: usize) -> ProfileNode {
    let (shape, docs_in, docs_out, blocks, elapsed) = *desc;
    let docs_out = docs_out.min(docs_in);
    let mut seg = ProfileNode::named("segment", format!("seg{i}"));
    seg.segments = 1;
    seg.docs_in = docs_in;
    seg.elapsed_ns = elapsed;
    match shape % 5 {
        0 | 1 => {
            seg.plan_kind = Some("raw");
            seg.docs_out = docs_out;
            let mut filter = ProfileNode::new("filter");
            filter.docs_in = docs_in;
            filter.docs_out = docs_out;
            filter.elapsed_ns = elapsed / 3;
            let mut scan = ProfileNode::new("aggregate");
            scan.kernel = Some(if shape % 5 == 0 { "batch" } else { "row" });
            scan.docs_in = docs_out;
            scan.docs_out = 1;
            scan.blocks_decoded = blocks;
            scan.elapsed_ns = elapsed - elapsed / 3;
            seg.children = vec![filter, scan];
        }
        2 => {
            seg.plan_kind = Some("star_tree");
            seg.docs_out = docs_out;
            let mut tree = ProfileNode::new("star_tree");
            tree.docs_in = docs_in;
            tree.docs_out = docs_out;
            tree.elapsed_ns = elapsed;
            seg.children = vec![tree];
        }
        3 => {
            seg.prune = Some("zonemap");
        }
        _ => {
            seg.plan_kind = Some("metadata_only");
            let mut meta = ProfileNode::new("metadata_only");
            meta.elapsed_ns = elapsed;
            seg.children = vec![meta];
        }
    }
    seg
}

fn fold_all<'a>(nodes: impl Iterator<Item = &'a ProfileNode>) -> ProfileNode {
    let mut s = ProfileNode::summary("segments_summary");
    for n in nodes {
        s.fold(n);
    }
    s
}

fn totals(nodes: &[ProfileNode]) -> (u64, u64, u64, u64, u64) {
    nodes.iter().fold((0, 0, 0, 0, 0), |acc, n| {
        (
            acc.0 + n.docs_in,
            acc.1 + n.docs_out,
            acc.2 + n.blocks_decoded,
            acc.3 + n.elapsed_ns,
            acc.4 + n.segments.max(1),
        )
    })
}

proptest! {
    /// Folding any permutation of the same segment set yields the same
    /// summary tree, and folding two partial summaries together equals
    /// folding everything sequentially — merge order is unobservable.
    #[test]
    fn fold_is_commutative_and_associative(
        descs in prop::collection::vec((0usize..5, 0u64..1000, 0u64..1000, 0u64..16, 0u64..100_000), 1..16),
    ) {
        let nodes: Vec<ProfileNode> = descs
            .iter()
            .enumerate()
            .map(|(i, d)| node_from(d, i))
            .collect();

        let fwd = fold_all(nodes.iter());
        let rev = fold_all(nodes.iter().rev());
        prop_assert_eq!(&fwd, &rev, "fold must be commutative");

        // Associativity: split anywhere, fold halves, combine.
        let k = nodes.len() / 2;
        let mut left = fold_all(nodes[..k].iter());
        let right = fold_all(nodes[k..].iter());
        left.fold(&right);
        // The combined summary double-counts nothing and loses nothing.
        prop_assert_eq!(left.docs_in, fwd.docs_in);
        prop_assert_eq!(left.docs_out, fwd.docs_out);
        prop_assert_eq!(left.blocks_decoded, fwd.blocks_decoded);
        prop_assert_eq!(left.elapsed_ns, fwd.elapsed_ns);
        prop_assert_eq!(left.segments, fwd.segments);
        prop_assert_eq!(&left.children, &fwd.children);
    }

    /// Server-side aggregation is lossless on counters: whatever
    /// `keep_exact`, the output accounts for exactly the input's docs,
    /// blocks, time, and segment count; at most `keep_exact` nodes stay
    /// named; summaries are anonymous; and input order is unobservable.
    #[test]
    fn aggregate_preserves_totals_and_caps_exact_nodes(
        descs in prop::collection::vec((0usize..5, 0u64..1000, 0u64..1000, 0u64..16, 0u64..100_000), 0..20),
        keep in 0usize..6,
    ) {
        let nodes: Vec<ProfileNode> = descs
            .iter()
            .enumerate()
            .map(|(i, d)| node_from(d, i))
            .collect();
        let before = totals(&nodes);

        let out = aggregate_segment_profiles(nodes.clone(), keep);
        prop_assert_eq!(totals(&out), before, "aggregation must not lose counters");

        let named = out.iter().filter(|n| n.name.is_some()).count();
        prop_assert!(named <= keep, "{named} named nodes with keep_exact={keep}");
        for n in &out {
            if n.operator == "segments_summary" {
                prop_assert!(n.name.is_none());
                prop_assert!(n.segments >= 1);
            }
        }

        // Permutation invariance: reversed input, identical output.
        let reversed = aggregate_segment_profiles(
            nodes.iter().rev().cloned().collect(),
            keep,
        );
        prop_assert_eq!(&out, &reversed);
    }
}
