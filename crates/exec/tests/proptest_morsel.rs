//! Morsel partitioning soundness (ISSUE 8 satellite): `split_selection`
//! must be a *lossless exact cover* of the input `DocSelection` for any
//! morsel size — every surviving doc appears in exactly one morsel, in
//! ascending order, with no duplication and no loss. The oracle is the
//! unsplit selection's own iteration (`for_each` for docs,
//! `for_each_block` for block structure): concatenating the morsels'
//! doc sequences in morsel order must reproduce it verbatim.
//!
//! The strategy deliberately covers every `DocSelection` representation
//! (All / Range / sparse Bitmap / run-heavy Bitmap / Empty) and morsel
//! sizes that are *not* multiples of the 1024-doc block — the raw split
//! is count-based and must hold for any size ≥ 1; rounding to block
//! multiples is config-level policy (`clamp_morsel_docs`), not a
//! correctness requirement of the partition itself.

use pinot_bitmap::RoaringBitmap;
use pinot_exec::{split_selection, DocBlock, DocSelection};
use proptest::prelude::*;
use std::collections::BTreeSet;

const DOC_SPACE: u32 = 40_000;

/// Flatten a selection to its ascending doc-id sequence via `for_each`.
fn docs_of(sel: &DocSelection) -> Vec<u32> {
    let mut out = Vec::new();
    sel.for_each(|d| out.push(d));
    out
}

/// Flatten a selection via `for_each_block` — the iteration the batch
/// kernels actually consume — so the cover is proven on the same code
/// path execution uses.
fn block_docs_of(sel: &DocSelection) -> Vec<u32> {
    let mut out = Vec::new();
    sel.for_each_block(|b| match b {
        DocBlock::Run(s, e) => out.extend(s..e),
        DocBlock::Ids(ids) => out.extend_from_slice(ids),
    });
    out
}

fn arb_selection() -> impl Strategy<Value = DocSelection> {
    prop_oneof![
        // No filter: all docs in [0, n).
        (0u32..DOC_SPACE).prop_map(DocSelection::All),
        // Sorted-column range [s, e).
        (0u32..DOC_SPACE, 0u32..DOC_SPACE).prop_map(|(a, b)| {
            let (s, e) = (a.min(b), a.max(b));
            if s == e {
                DocSelection::Empty
            } else {
                DocSelection::Range(s, e)
            }
        }),
        // Sparse bitmap: scattered survivors.
        prop::collection::vec(0u32..DOC_SPACE, 0..2000).prop_map(|ids| {
            let ids: BTreeSet<u32> = ids.into_iter().collect();
            if ids.is_empty() {
                DocSelection::Empty
            } else {
                DocSelection::Bitmap(RoaringBitmap::from_sorted(ids))
            }
        }),
        // Run-heavy bitmap: a few dense runs plus sparse noise — the shape
        // sorted-predicate ∧ bloom-probe intersections produce.
        (
            prop::collection::vec((0u32..DOC_SPACE, 1u32..3000), 1..5),
            prop::collection::vec(0u32..DOC_SPACE, 0..300),
        )
            .prop_map(|(runs, noise)| {
                let mut ids: BTreeSet<u32> = noise.into_iter().collect();
                for (start, len) in runs {
                    ids.extend(start..(start.saturating_add(len)).min(DOC_SPACE));
                }
                DocSelection::Bitmap(RoaringBitmap::from_sorted(ids))
            }),
        Just(DocSelection::Empty),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Exact cover: concatenating morsel doc sequences in morsel order
    /// reproduces the unsplit selection's sequence verbatim — no doc
    /// dropped, duplicated, or reordered — and the partition is the
    /// count-based one the merge-order contract depends on: every morsel
    /// except the last holds exactly `morsel_docs` docs.
    #[test]
    fn split_is_lossless_exact_cover(
        sel in arb_selection(),
        morsel_docs in 1usize..70_000,
    ) {
        let oracle = docs_of(&sel);
        let morsels = split_selection(&sel, morsel_docs);

        // Morsel count is fully determined by the survivor count.
        let expected_morsels = oracle.len().div_ceil(morsel_docs);
        prop_assert_eq!(morsels.len(), expected_morsels, "morsel count");

        let mut covered = Vec::with_capacity(oracle.len());
        for (i, m) in morsels.iter().enumerate() {
            let docs = docs_of(m);
            prop_assert!(!docs.is_empty(), "morsel {i} is empty");
            if i + 1 < morsels.len() {
                prop_assert_eq!(docs.len(), morsel_docs, "morsel {} not full", i);
            } else {
                prop_assert!(docs.len() <= morsel_docs, "last morsel overflows");
            }
            prop_assert_eq!(docs.len() as u64, m.count(), "count() disagrees with for_each");
            covered.extend(docs);
        }
        prop_assert_eq!(covered, oracle, "concatenated morsels != unsplit selection");
    }

    /// The same cover holds through `for_each_block` — the iteration the
    /// batch kernels consume — so splitting cannot perturb what a kernel
    /// actually scans.
    #[test]
    fn split_covers_block_iteration(
        sel in arb_selection(),
        morsel_docs in 1usize..70_000,
    ) {
        let oracle = block_docs_of(&sel);
        let mut covered = Vec::with_capacity(oracle.len());
        for m in split_selection(&sel, morsel_docs) {
            covered.extend(block_docs_of(&m));
        }
        prop_assert_eq!(covered, oracle, "block iteration differs after split");
    }

    /// Representation independence: a Bitmap holding exactly the docs of
    /// an All/Range selection splits into the same doc partition. The
    /// cost gate may only change *scheduling*, so the partition must not
    /// depend on which representation pruning happened to produce.
    #[test]
    fn split_ignores_selection_representation(
        start in 0u32..10_000,
        len in 1u32..20_000,
        morsel_docs in 1usize..30_000,
    ) {
        let range = DocSelection::Range(start, start + len);
        let bitmap = DocSelection::Bitmap(RoaringBitmap::from_range(start, start + len));
        let via_range: Vec<Vec<u32>> =
            split_selection(&range, morsel_docs).iter().map(docs_of).collect();
        let via_bitmap: Vec<Vec<u32>> =
            split_selection(&bitmap, morsel_docs).iter().map(docs_of).collect();
        prop_assert_eq!(via_range, via_bitmap, "partition depends on representation");
    }
}
