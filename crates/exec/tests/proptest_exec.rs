//! End-to-end per-segment execution properties: results must be identical
//! regardless of which indexes the segment has (no index / inverted /
//! sorted / star-tree), and must match a brute-force evaluator.

use pinot_common::config::StarTreeConfig;
use pinot_common::{DataType, FieldSpec, Record, Schema, Value};
use pinot_exec::segment_exec::{execute_on_segment, ResultPayload, SegmentHandle};
use pinot_pql::parse;
use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
use pinot_segment::ImmutableSegment;
use pinot_startree::build_star_tree;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Row {
    k: i64,
    c: &'static str,
    m: i64,
}

fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (
            0i64..8,
            prop::sample::select(vec!["us", "de", "fr", "jp"]),
            -50i64..50,
        )
            .prop_map(|(k, c, m)| Row { k, c, m }),
        1..150,
    )
}

fn build(rows: &[Row], variant: u8) -> SegmentHandle {
    let schema = Schema::new(
        "t",
        vec![
            FieldSpec::dimension("k", DataType::Long),
            FieldSpec::dimension("c", DataType::String),
            FieldSpec::metric("m", DataType::Long),
        ],
    )
    .unwrap();
    let mut cfg = BuilderConfig::new("s", "t");
    match variant {
        1 => cfg = cfg.with_inverted_columns(&["k", "c"]),
        2 => cfg = cfg.with_sort_columns(&["k"]).with_inverted_columns(&["c"]),
        _ => {}
    }
    let mut b = SegmentBuilder::new(schema, cfg).unwrap();
    for r in rows {
        b.add(Record::new(vec![
            Value::Long(r.k),
            Value::from(r.c),
            Value::Long(r.m),
        ]))
        .unwrap();
    }
    let seg: Arc<ImmutableSegment> = Arc::new(b.build().unwrap());
    let mut handle = SegmentHandle::new(Arc::clone(&seg));
    if variant == 3 {
        let tree = build_star_tree(
            &seg,
            &StarTreeConfig {
                dimensions: vec!["k".into(), "c".into()],
                metrics: vec!["m".into()],
                max_leaf_records: 2,
                skip_star_dimensions: vec![],
            },
        )
        .unwrap();
        handle = handle.with_star_tree(Arc::new(tree));
    }
    handle
}

/// Queries whose filters/groups are on (k, c) with aggregations on m — the
/// shapes all four variants including star-tree can run.
fn query_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("SELECT COUNT(*), SUM(m), MIN(m), MAX(m), AVG(m) FROM t".to_string()),
        (0i64..8).prop_map(|k| format!("SELECT SUM(m), COUNT(*) FROM t WHERE k = {k}")),
        (0i64..8, 0i64..8)
            .prop_map(|(a, b)| format!("SELECT SUM(m) FROM t WHERE k = {a} OR k = {b}")),
        (0i64..8)
            .prop_map(|k| format!("SELECT SUM(m), COUNT(*) FROM t WHERE k >= {k} AND c = 'us'")),
        Just("SELECT SUM(m) FROM t WHERE c IN ('us', 'de') GROUP BY k TOP 100".to_string()),
        Just("SELECT COUNT(*) FROM t GROUP BY c TOP 100".to_string()),
        (0i64..8).prop_map(|k| format!(
            "SELECT COUNT(*), SUM(m) FROM t WHERE k BETWEEN 2 AND {k} GROUP BY c TOP 100"
        )),
    ]
}

fn brute_force(rows: &[Row], pql: &str) -> (HashMap<String, Vec<f64>>, Vec<String>) {
    let q = parse(pql).unwrap();
    let matches = |r: &Row| -> bool {
        match &q.filter {
            None => true,
            Some(p) => eval_pred(p, r),
        }
    };
    fn eval_pred(p: &pinot_pql::Predicate, r: &Row) -> bool {
        use pinot_pql::{CmpOp, Predicate};
        let field = |name: &str| -> Value {
            match name {
                "k" => Value::Long(r.k),
                "c" => Value::from(r.c),
                "m" => Value::Long(r.m),
                _ => Value::Null,
            }
        };
        match p {
            Predicate::And(ps) => ps.iter().all(|p| eval_pred(p, r)),
            Predicate::Or(ps) => ps.iter().any(|p| eval_pred(p, r)),
            Predicate::Not(p) => !eval_pred(p, r),
            Predicate::Cmp { column, op, value } => {
                let ord = field(column).total_cmp(value);
                match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                }
            }
            Predicate::In {
                column,
                values,
                negated,
            } => {
                let hit = values.iter().any(|v| field(column).total_cmp(v).is_eq());
                hit != *negated
            }
            Predicate::Between { column, low, high } => {
                let f = field(column);
                f.total_cmp(low).is_ge() && f.total_cmp(high).is_le()
            }
        }
    }

    // Aggregate per group (empty key when no GROUP BY).
    let mut out: HashMap<String, Vec<f64>> = HashMap::new();
    let aggs = q.aggregations().to_vec();
    for r in rows.iter().filter(|r| matches(r)) {
        let key = q
            .group_by
            .iter()
            .map(|g| match g.as_str() {
                "k" => r.k.to_string(),
                "c" => r.c.to_string(),
                other => panic!("{other}"),
            })
            .collect::<Vec<_>>()
            .join("|");
        let entry = out.entry(key).or_insert_with(|| {
            aggs.iter()
                .map(|a| match a.function {
                    pinot_pql::AggFunction::Min => f64::INFINITY,
                    pinot_pql::AggFunction::Max => f64::NEG_INFINITY,
                    _ => 0.0,
                })
                .collect()
        });
        for (i, a) in aggs.iter().enumerate() {
            let x = r.m as f64;
            match a.function {
                pinot_pql::AggFunction::Count => entry[i] += 1.0,
                pinot_pql::AggFunction::Sum => entry[i] += x,
                pinot_pql::AggFunction::Min => entry[i] = entry[i].min(x),
                pinot_pql::AggFunction::Max => entry[i] = entry[i].max(x),
                pinot_pql::AggFunction::Avg => entry[i] += x, // divide later
                pinot_pql::AggFunction::DistinctCount => unreachable!(),
            }
        }
    }
    // Fix up averages.
    let counts: HashMap<String, f64> = rows
        .iter()
        .filter(|r| matches(r))
        .map(|r| {
            q.group_by
                .iter()
                .map(|g| match g.as_str() {
                    "k" => r.k.to_string(),
                    "c" => r.c.to_string(),
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .fold(HashMap::new(), |mut m, k| {
            *m.entry(k).or_insert(0.0) += 1.0;
            m
        });
    for (k, v) in out.iter_mut() {
        for (i, a) in aggs.iter().enumerate() {
            if a.function == pinot_pql::AggFunction::Avg {
                v[i] /= counts[k];
            }
        }
    }
    (out, q.group_by.clone())
}

fn result_to_map(handle: &SegmentHandle, pql: &str) -> HashMap<String, Vec<f64>> {
    let q = parse(pql).unwrap();
    let r = execute_on_segment(handle, &q).unwrap();
    match r.payload {
        ResultPayload::Aggregation(states) => {
            let vals: Vec<f64> = states.iter().map(|s| s.finalize_f64()).collect();
            // An all-empty aggregation over zero matching rows is equivalent
            // to brute force's "no groups at all".
            let count_like = states.iter().any(|s| match s {
                pinot_exec::AggState::Count(n) => *n > 0,
                pinot_exec::AggState::Sum(_) => true,
                pinot_exec::AggState::Avg { count, .. } => *count > 0,
                pinot_exec::AggState::Min(m) => m.is_finite(),
                pinot_exec::AggState::Max(m) => m.is_finite(),
                pinot_exec::AggState::Distinct(s) => !s.is_empty(),
            });
            let mut out = HashMap::new();
            if count_like {
                out.insert(String::new(), vals);
            }
            out
        }
        ResultPayload::GroupBy(groups) => groups
            .into_iter()
            .map(|(key, states)| {
                let k = key
                    .iter()
                    .map(|g| match g.to_value() {
                        Value::Long(x) => x.to_string(),
                        Value::String(s) => s,
                        other => other.to_string(),
                    })
                    .collect::<Vec<_>>()
                    .join("|");
                (k, states.iter().map(|s| s.finalize_f64()).collect())
            })
            .collect(),
        other => panic!("unexpected payload {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_variants_agree_with_brute_force(rows in rows_strategy(), pql in query_strategy()) {
        let (expected, group_by) = brute_force(&rows, &pql);
        for variant in 0..4u8 {
            let handle = build(&rows, variant);
            let got = result_to_map(&handle, &pql);
            // For ungrouped queries over an empty match set, engines report
            // identity aggregates; brute force reports nothing. Normalize:
            let effectively_empty = expected.is_empty() && group_by.is_empty();
            if effectively_empty {
                if let Some(vals) = got.get("") {
                    // COUNT-like zero / identity results only.
                    let q = parse(&pql).unwrap();
                    for (i, a) in q.aggregations().iter().enumerate() {
                        match a.function {
                            pinot_pql::AggFunction::Count => prop_assert_eq!(vals[i], 0.0),
                            pinot_pql::AggFunction::Sum => prop_assert_eq!(vals[i], 0.0),
                            _ => {}
                        }
                    }
                }
                continue;
            }
            prop_assert_eq!(got.len(), expected.len(), "variant {} pql {} got {:?} expected {:?}", variant, &pql, &got, &expected);
            for (k, vals) in &expected {
                let g = got.get(k).ok_or_else(|| TestCaseError::fail(
                    format!("variant {variant}: missing group {k:?} for {pql}")
                ))?;
                for (i, v) in vals.iter().enumerate() {
                    prop_assert!((g[i] - v).abs() < 1e-6,
                        "variant {} pql {} group {:?} agg {}: {} vs {}", variant, &pql, k, i, g[i], v);
                }
            }
        }
    }
}
