//! Pruning soundness properties (ISSUE 5): the `PruneEvaluator` may only
//! say `CannotMatch` when the engine would find zero matching rows, and
//! may only say `MatchAll` when the filter keeps every row. The oracle is
//! the real execution path — a `COUNT(*)` with the same filter — so the
//! evaluator is held to exactly the engine's coercion and comparison
//! semantics, not an idealized model of them.

use pinot_common::{DataType, FieldSpec, Record, Schema, Value};
use pinot_exec::segment_exec::{execute_on_segment, ResultPayload, SegmentHandle};
use pinot_exec::{Prunable, PruneEvaluator};
use pinot_pql::parse;
use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Row {
    k: i64,
    c: &'static str,
    m: i64,
    ts: i64,
}

fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (
            0i64..8,
            prop::sample::select(vec!["us", "de", "fr", "jp"]),
            -50i64..50,
            100i64..130,
        )
            .prop_map(|(k, c, m, ts)| Row { k, c, m, ts }),
        1..120,
    )
}

fn build(rows: &[Row]) -> SegmentHandle {
    let schema = Schema::new(
        "t",
        vec![
            FieldSpec::dimension("k", DataType::Long),
            FieldSpec::dimension("c", DataType::String),
            FieldSpec::metric("m", DataType::Long),
            FieldSpec::time("ts", DataType::Long, pinot_common::TimeUnit::Days),
        ],
    )
    .unwrap();
    let cfg = BuilderConfig::new("s", "t").with_bloom_columns(&["k", "c"]);
    let mut b = SegmentBuilder::new(schema, cfg).unwrap();
    for r in rows {
        b.add(Record::new(vec![
            Value::Long(r.k),
            Value::from(r.c),
            Value::Long(r.m),
            Value::Long(r.ts),
        ]))
        .unwrap();
    }
    SegmentHandle::new(Arc::new(b.build().unwrap()))
}

/// Filters deliberately spanning in-range, out-of-range, absent-value, and
/// type-incompatible probes, composed with AND/OR/NOT/IN/BETWEEN.
fn filter_strategy() -> impl Strategy<Value = String> {
    let country = prop::sample::select(vec!["us", "de", "fr", "jp", "br", "zz"]);
    let leaf = prop_oneof![
        (-4i64..12).prop_map(|k| format!("k = {k}")),
        (-4i64..12).prop_map(|k| format!("k >= {k}")),
        (-4i64..12).prop_map(|k| format!("k < {k}")),
        (-200i64..200).prop_map(|m| format!("m <= {m}")),
        (90i64..140).prop_map(|t| format!("ts = {t}")),
        (90i64..140, 0i64..20).prop_map(|(lo, w)| format!("ts BETWEEN {lo} AND {}", lo + w)),
        country.clone().prop_map(|c| format!("c = '{c}'")),
        (country.clone(), country.clone()).prop_map(|(a, b)| format!("c IN ('{a}', '{b}')")),
        // Type-incompatible probes: match nothing in the engine, so
        // CannotMatch must be an acceptable answer, never a wrong one.
        Just("k = 'ten'".to_string()),
        Just("m = 10.5".to_string()),
    ];
    let pair = (leaf.clone(), leaf.clone());
    prop_oneof![
        leaf.clone(),
        pair.clone().prop_map(|(a, b)| format!("{a} AND {b}")),
        pair.clone().prop_map(|(a, b)| format!("{a} OR {b}")),
        leaf.clone().prop_map(|a| format!("NOT {a}")),
        (leaf.clone(), pair).prop_map(|(a, (b, c))| format!("{a} AND ({b} OR {c})")),
    ]
}

fn engine_count(handle: &SegmentHandle, filter: &str) -> u64 {
    let q = parse(&format!("SELECT COUNT(*) FROM t WHERE {filter}")).unwrap();
    let r = execute_on_segment(handle, &q).unwrap();
    match r.payload {
        ResultPayload::Aggregation(states) => match &states[0] {
            pinot_exec::AggState::Count(n) => *n,
            other => panic!("unexpected state {other:?}"),
        },
        other => panic!("unexpected payload {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The metadata-only plan answers MIN/MAX/COUNT on zone-mapped columns
    /// (ISSUE 5 satellite): for arbitrary data it must return exactly what
    /// the full-scan path computes. A tautological filter forces the scan
    /// plan for the oracle side.
    #[test]
    fn metadata_min_max_matches_full_scan(rows in rows_strategy()) {
        let handle = build(&rows);
        let aggs = "MIN(m), MAX(m), MIN(k), MAX(ts), COUNT(m), COUNT(*)";
        let meta_q = parse(&format!("SELECT {aggs} FROM t")).unwrap();
        let scan_q = parse(&format!("SELECT {aggs} FROM t WHERE k >= -100")).unwrap();
        prop_assert_eq!(
            pinot_exec::plan_segment(&handle, &meta_q),
            pinot_exec::PlanKind::MetadataOnly
        );
        prop_assert_eq!(
            pinot_exec::plan_segment(&handle, &scan_q),
            pinot_exec::PlanKind::Raw
        );
        let meta = execute_on_segment(&handle, &meta_q).unwrap();
        let scan = execute_on_segment(&handle, &scan_q).unwrap();
        match (&meta.payload, &scan.payload) {
            (ResultPayload::Aggregation(m), ResultPayload::Aggregation(s)) => {
                let m: Vec<f64> = m.iter().map(|a| a.finalize_f64()).collect();
                let s: Vec<f64> = s.iter().map(|a| a.finalize_f64()).collect();
                prop_assert_eq!(m, s);
            }
            other => prop_assert!(false, "unexpected payloads {:?}", other),
        }
    }

    /// `CannotMatch` implies zero engine matches, and `MatchAll` implies
    /// every row matches — across arbitrary data and filter shapes.
    #[test]
    fn prune_verdicts_are_sound(rows in rows_strategy(), filter in filter_strategy()) {
        let handle = build(&rows);
        let segment = &handle.segment;
        let q = parse(&format!("SELECT COUNT(*) FROM t WHERE {filter}")).unwrap();
        let evaluator = PruneEvaluator::new(Some("ts".to_string()));
        let outcome = evaluator.evaluate(q.filter.as_ref(), segment.as_ref());
        let matched = engine_count(&handle, &filter);
        match outcome.prunable {
            Prunable::CannotMatch => prop_assert_eq!(
                matched, 0,
                "pruned a segment with {} matching rows (filter {})", matched, &filter
            ),
            Prunable::MatchAll => prop_assert_eq!(
                matched, segment.num_docs() as u64,
                "claimed MatchAll but only {}/{} rows match (filter {})",
                matched, segment.num_docs(), &filter
            ),
            Prunable::Unknown => {}
        }
    }
}
