//! Cost-based planner properties (ISSUE 9): the selectivity estimator
//! always answers a probability, And/Or estimates are monotone against
//! their children, and every access-path strategy — including the bulk
//! IndexAnd/IndexOr operators — selects exactly the docs the scan-path
//! oracle selects on arbitrary segments.

use pinot_common::query::ExecutionStats;
use pinot_common::{DataType, FieldSpec, Record, Schema, Value};
use pinot_exec::planner::normalize_predicate;
use pinot_exec::selection::DocSelection;
use pinot_exec::{estimate_leaf, estimate_predicate, evaluate_filter_planned, PlannerMode};
use pinot_pql::{parse, Predicate};
use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
use pinot_segment::ImmutableSegment;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Row {
    k: i64,
    c: &'static str,
    m: i64,
}

fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (
            0i64..8,
            prop::sample::select(vec!["us", "de", "fr", "jp"]),
            -50i64..50,
        )
            .prop_map(|(k, c, m)| Row { k, c, m }),
        1..120,
    )
}

/// Segment variants: 0 = no indexes, 1 = inverted on k and c (the
/// IndexAnd/IndexOr sweet spot), 2 = sorted on k + inverted on c.
fn build(rows: &[Row], variant: u8) -> Arc<ImmutableSegment> {
    let schema = Schema::new(
        "t",
        vec![
            FieldSpec::dimension("k", DataType::Long),
            FieldSpec::dimension("c", DataType::String),
            FieldSpec::metric("m", DataType::Long),
        ],
    )
    .unwrap();
    let mut cfg = BuilderConfig::new("s", "t");
    match variant {
        1 => cfg = cfg.with_inverted_columns(&["k", "c"]),
        2 => cfg = cfg.with_sort_columns(&["k"]).with_inverted_columns(&["c"]),
        _ => {}
    }
    let mut b = SegmentBuilder::new(schema, cfg).unwrap();
    for r in rows {
        b.add(Record::new(vec![
            Value::Long(r.k),
            Value::from(r.c),
            Value::Long(r.m),
        ]))
        .unwrap();
    }
    Arc::new(b.build().unwrap())
}

fn leaf_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..9).prop_map(|v| format!("k = {v}")),
        (0i64..9).prop_map(|v| format!("k > {v}")),
        (0i64..9).prop_map(|v| format!("k != {v}")),
        (0i64..5, 4i64..9).prop_map(|(a, b)| format!("k BETWEEN {a} AND {b}")),
        prop::collection::vec((0i64..9).prop_map(|v| v.to_string()), 1..4)
            .prop_map(|vs| format!("k IN ({})", vs.join(", "))),
        prop::sample::select(vec!["us", "de", "fr", "jp", "zz"]).prop_map(|c| format!("c = '{c}'")),
        prop::collection::vec(prop::sample::select(vec!["'us'", "'fr'", "'zz'"]), 1..3)
            .prop_map(|vs| format!("c IN ({})", vs.join(", "))),
        (-60i64..60).prop_map(|v| format!("m < {v}")),
        (-60i64..0, 0i64..60).prop_map(|(a, b)| format!("m BETWEEN {a} AND {b}")),
    ]
}

/// A filter with enough structure to hit IndexAnd (multiple indexed
/// conjuncts), IndexOr (all-inverted disjunctions), NOT, and scan mixes.
fn filter_strategy() -> impl Strategy<Value = String> {
    let clause = prop_oneof![
        leaf_strategy(),
        prop::collection::vec(leaf_strategy(), 2..4).prop_map(|ls| ls.join(" OR ")),
    ];
    prop::collection::vec(
        (clause, any::<bool>()).prop_map(|(c, neg)| {
            if neg {
                format!("NOT ({c})")
            } else {
                format!("({c})")
            }
        }),
        1..4,
    )
    .prop_map(|cs| cs.join(" AND "))
}

fn filter_of(f: &str) -> Predicate {
    parse(&format!("SELECT COUNT(*) FROM t WHERE {f}"))
        .unwrap()
        .filter
        .unwrap()
}

fn docs(sel: &DocSelection) -> Vec<u32> {
    let mut v = Vec::new();
    sel.for_each(|d| v.push(d));
    v
}

fn assert_leaf_probabilities(
    segment: &ImmutableSegment,
    pred: &Predicate,
) -> Result<(), TestCaseError> {
    match pred {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for p in ps {
                assert_leaf_probabilities(segment, p)?;
            }
        }
        Predicate::Not(inner) => assert_leaf_probabilities(segment, inner)?,
        leaf => {
            let e = estimate_leaf(segment, leaf);
            prop_assert!(
                (0.0..=1.0).contains(&e.selectivity),
                "leaf {leaf:?} estimated {}",
                e.selectivity
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every estimate — per leaf and for the whole tree — is in [0, 1],
    /// on every index layout.
    #[test]
    fn estimates_are_probabilities(rows in rows_strategy(), f in filter_strategy()) {
        for variant in 0..3u8 {
            let seg = build(&rows, variant);
            let norm = normalize_predicate(&filter_of(&f));
            let s = estimate_predicate(&seg, &norm);
            prop_assert!((0.0..=1.0).contains(&s), "tree estimated {s}");
            assert_leaf_probabilities(&seg, &norm)?;
        }
    }

    /// And never estimates above its smallest child; Or never below its
    /// largest.
    #[test]
    fn and_or_estimates_are_monotone(
        rows in rows_strategy(),
        fa in filter_strategy(),
        fb in filter_strategy(),
    ) {
        for variant in 0..3u8 {
            let seg = build(&rows, variant);
            let pa = normalize_predicate(&filter_of(&fa));
            let pb = normalize_predicate(&filter_of(&fb));
            let a = estimate_predicate(&seg, &pa);
            let b = estimate_predicate(&seg, &pb);
            let and = estimate_predicate(&seg, &Predicate::And(vec![pa.clone(), pb.clone()]));
            let or = estimate_predicate(&seg, &Predicate::Or(vec![pa, pb]));
            prop_assert!(and <= a.min(b) + 1e-9, "And {and} above min({a}, {b})");
            prop_assert!(or >= a.max(b) - 1e-9, "Or {or} below max({a}, {b})");
        }
    }

    /// Every access-path strategy (auto with its IndexAnd/IndexOr bulk
    /// operators, and each forced path) selects exactly the docs the
    /// forced-scan oracle selects, under both scan kernels.
    #[test]
    fn strategies_match_scan_oracle(rows in rows_strategy(), f in filter_strategy()) {
        let pred = filter_of(&f);
        for variant in 0..3u8 {
            let seg = build(&rows, variant);
            let mut s = ExecutionStats::default();
            let oracle = docs(
                &evaluate_filter_planned(&seg, Some(&pred), &mut s, PlannerMode::Scan, true)
                    .unwrap(),
            );
            for mode in [PlannerMode::Auto, PlannerMode::Inverted, PlannerMode::Sorted] {
                for batch in [false, true] {
                    let mut s = ExecutionStats::default();
                    let sel =
                        evaluate_filter_planned(&seg, Some(&pred), &mut s, mode, batch).unwrap();
                    prop_assert_eq!(
                        docs(&sel),
                        oracle.clone(),
                        "variant={} mode={:?} batch={} filter={}",
                        variant,
                        mode,
                        batch,
                        f
                    );
                }
            }
        }
    }
}
