//! A Druid-like baseline engine (§2, §6).
//!
//! The paper compares Pinot against Druid, "an analytical system with an
//! architecture similar to Pinot". The comparisons hinge on documented
//! differences in the *storage and execution* layers, which this baseline
//! reproduces over the same segment substrate so index structure — not
//! incidental implementation detail — drives the measured gaps:
//!
//! * Druid builds a bitmap inverted index on **every** dimension column
//!   ("In Druid, all dimension columns have an associated inverted index;
//!   as not all dimensions are used in filtering predicates, this leads to
//!   a larger on disk size for Druid over Pinot");
//! * Druid has **no sorted-column layout** and no range/vectorized fast
//!   path — filters are always evaluated via bitmap operations;
//! * Druid has **no star-tree**; every aggregation runs over raw rows;
//! * brokers fan out to all historicals holding table data (no
//!   partition-aware routing).
//!
//! Like the Pinot side of the evaluation, realtime ingestion is disabled
//! (the paper disabled it for both systems).

use pinot_common::query::{QueryRequest, QueryResponse};
use pinot_common::{PinotError, Record, Result, Schema};
use pinot_exec::segment_exec::{execute_on_segment, IntermediateResult, SegmentHandle};
use pinot_exec::{finalize, merge_intermediate};
use pinot_pql::Query;
use pinot_segment::builder::{BuilderConfig, SegmentBuilder};
use pinot_segment::ImmutableSegment;
use std::collections::HashMap;
use std::sync::Arc;

/// One simulated Druid historical node.
struct Historical {
    segments: Vec<SegmentHandle>,
}

/// The Druid-like engine: a broker over N historicals.
pub struct DruidEngine {
    historicals: Vec<Historical>,
    tables: HashMap<String, Schema>,
}

impl DruidEngine {
    pub fn new(num_historicals: usize) -> DruidEngine {
        assert!(num_historicals > 0);
        DruidEngine {
            historicals: (0..num_historicals)
                .map(|_| Historical {
                    segments: Vec::new(),
                })
                .collect(),
            tables: HashMap::new(),
        }
    }

    pub fn num_historicals(&self) -> usize {
        self.historicals.len()
    }

    /// Load a table: rows are chunked into segments of `rows_per_segment`,
    /// each indexed the Druid way (inverted bitmap index on every
    /// dimension, no sort, no star-tree), and spread round-robin over the
    /// historicals.
    pub fn load_table(
        &mut self,
        name: &str,
        schema: Schema,
        rows: Vec<Record>,
        rows_per_segment: usize,
    ) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(PinotError::Metadata(format!("table {name} already loaded")));
        }
        let all_dims: Vec<String> = schema.dimensions().map(|f| f.name.clone()).collect();
        let dim_refs: Vec<&str> = all_dims.iter().map(String::as_str).collect();

        for (seq, chunk) in rows.chunks(rows_per_segment.max(1)).enumerate() {
            let cfg =
                BuilderConfig::new(format!("{name}__{seq}"), name).with_inverted_columns(&dim_refs);
            let mut builder = SegmentBuilder::new(schema.clone(), cfg)?;
            for r in chunk {
                builder.add(r.clone())?;
            }
            let segment: Arc<ImmutableSegment> = Arc::new(builder.build()?);
            let node = seq % self.historicals.len();
            self.historicals[node]
                .segments
                .push(SegmentHandle::new(segment));
        }
        self.tables.insert(name.to_string(), schema);
        Ok(())
    }

    /// Total bytes of loaded segments — Druid's all-dimensions indexing
    /// makes this measurably larger than Pinot's for the same data, which
    /// the Figure 14 discussion calls out.
    pub fn storage_bytes(&self) -> u64 {
        self.historicals
            .iter()
            .flat_map(|h| &h.segments)
            .map(|s| s.segment.size_bytes())
            .sum()
    }

    pub fn num_segments(&self) -> usize {
        self.historicals.iter().map(|h| h.segments.len()).sum()
    }

    /// Execute a PQL query: scatter over all historicals (each processes
    /// its own segments on a worker thread, like the Druid broker →
    /// historical fan-out), gather, merge, finalize.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse> {
        let started = std::time::Instant::now();
        let query = Arc::new(pinot_pql::parse(&request.pql)?);
        if !self.tables.contains_key(&query.table) {
            return Err(PinotError::Metadata(format!(
                "unknown table {:?}",
                query.table
            )));
        }

        let partials: Vec<Result<IntermediateResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .historicals
                .iter()
                .map(|h| {
                    let q = Arc::clone(&query);
                    scope.spawn(move || execute_historical(h, &q))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });

        let mut acc = IntermediateResult::empty_for(&query);
        let mut exceptions = Vec::new();
        for p in partials {
            match p {
                Ok(partial) => merge_intermediate(&mut acc, partial)?,
                Err(e) => exceptions.push(e.to_string()),
            }
        }
        acc.stats.num_servers_queried = self.historicals.len() as u64;
        acc.stats.num_servers_responded = self.historicals.len() as u64 - exceptions.len() as u64;
        acc.stats.time_used_ms = started.elapsed().as_millis() as u64;
        let partial = !exceptions.is_empty();
        let stats = acc.stats.clone();
        let result = finalize(acc, &query)?;
        Ok(QueryResponse {
            result,
            stats,
            partial,
            exceptions,
            profile: None,
        })
    }
}

fn execute_historical(h: &Historical, query: &Query) -> Result<IntermediateResult> {
    let mut acc = IntermediateResult::empty_for(query);
    for handle in &h.segments {
        if handle.segment.metadata().table != query.table {
            continue;
        }
        let partial = execute_on_segment(handle, query)?;
        merge_intermediate(&mut acc, partial)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinot_common::{DataType, FieldSpec, Value};

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                FieldSpec::dimension("country", DataType::String),
                FieldSpec::dimension("browser", DataType::String),
                FieldSpec::metric("clicks", DataType::Long),
            ],
        )
        .unwrap()
    }

    fn rows(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new(vec![
                    Value::String(format!("c{}", i % 5)),
                    Value::String(format!("b{}", i % 3)),
                    Value::Long(i as i64),
                ])
            })
            .collect()
    }

    #[test]
    fn loads_with_inverted_on_all_dimensions() {
        let mut engine = DruidEngine::new(3);
        engine.load_table("t", schema(), rows(100), 30).unwrap();
        assert_eq!(engine.num_segments(), 4); // ceil(100/30)
        for h in &engine.historicals {
            for s in &h.segments {
                let m = s.segment.metadata();
                assert!(m.column("country").unwrap().has_inverted_index);
                assert!(m.column("browser").unwrap().has_inverted_index);
                assert!(!m.column("clicks").unwrap().has_inverted_index);
                assert!(!m.column("country").unwrap().is_sorted);
                assert!(s.star_tree.is_none());
            }
        }
    }

    #[test]
    fn queries_match_expectations() {
        let mut engine = DruidEngine::new(2);
        engine.load_table("t", schema(), rows(100), 25).unwrap();
        let resp = engine
            .execute(&QueryRequest::new(
                "SELECT COUNT(*), SUM(clicks) FROM t WHERE country = 'c1'",
            ))
            .unwrap();
        match resp.result {
            pinot_common::query::QueryResult::Aggregation(aggs) => {
                assert_eq!(aggs[0].value, Value::Long(20));
                let expect: f64 = (0..100).filter(|i| i % 5 == 1).map(|i| i as f64).sum();
                assert_eq!(aggs[1].value, Value::Double(expect));
            }
            other => panic!("{other:?}"),
        }
        assert!(!resp.partial);
        assert_eq!(resp.stats.num_servers_queried, 2);
    }

    #[test]
    fn group_by_works() {
        let mut engine = DruidEngine::new(2);
        engine.load_table("t", schema(), rows(90), 30).unwrap();
        let resp = engine
            .execute(&QueryRequest::new(
                "SELECT COUNT(*) FROM t GROUP BY browser TOP 10",
            ))
            .unwrap();
        let tables = resp.result.group_by().unwrap();
        assert_eq!(tables[0].rows.len(), 3);
        for (_, v) in &tables[0].rows {
            assert_eq!(*v, Value::Long(30));
        }
    }

    #[test]
    fn unknown_table_and_duplicate_load() {
        let mut engine = DruidEngine::new(1);
        engine.load_table("t", schema(), rows(10), 5).unwrap();
        assert!(engine.load_table("t", schema(), rows(10), 5).is_err());
        assert!(engine
            .execute(&QueryRequest::new("SELECT COUNT(*) FROM nope"))
            .is_err());
    }

    #[test]
    fn storage_reflects_indexes() {
        let mut indexed = DruidEngine::new(1);
        indexed.load_table("t", schema(), rows(2000), 1000).unwrap();
        assert!(indexed.storage_bytes() > 0);
    }
}
