//! Zookeeper-like metadata store substrate.
//!
//! Pinot stores all cluster state, segment assignment, and metadata in
//! Zookeeper (through Helix) and uses it as the coordination mechanism
//! between nodes (§3.2). This crate supplies the primitives the rest of the
//! system needs:
//!
//! * a hierarchical, versioned key space with compare-and-set writes;
//! * **ephemeral nodes** bound to a session, deleted when the session
//!   expires (node liveness);
//! * **watches**: subscribers receive change events for a path prefix;
//! * **leader election** built from ephemeral nodes (controller mastership,
//!   §3.2 "Controller mastership is managed by Apache Helix").

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use pinot_common::{PinotError, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A liveness session; expiring it removes its ephemeral nodes.
pub type SessionId = u64;

/// What happened to a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchKind {
    Created,
    Updated,
    Deleted,
}

/// A change notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    pub path: String,
    pub kind: WatchKind,
    pub value: Option<String>,
}

#[derive(Debug, Clone)]
struct NodeData {
    value: String,
    version: u64,
    ephemeral_owner: Option<SessionId>,
}

struct Inner {
    nodes: BTreeMap<String, NodeData>,
    watchers: Vec<(String, Sender<WatchEvent>)>,
    next_session: SessionId,
    live_sessions: Vec<SessionId>,
}

/// The metadata store handle (cheaply cloneable).
#[derive(Clone)]
pub struct MetaStore {
    inner: Arc<Mutex<Inner>>,
}

impl Default for MetaStore {
    fn default() -> Self {
        MetaStore::new()
    }
}

impl MetaStore {
    pub fn new() -> MetaStore {
        MetaStore {
            inner: Arc::new(Mutex::new(Inner {
                nodes: BTreeMap::new(),
                watchers: Vec::new(),
                next_session: 1,
                live_sessions: Vec::new(),
            })),
        }
    }

    fn validate_path(path: &str) -> Result<()> {
        if path.is_empty() || !path.starts_with('/') || path.ends_with('/') || path.contains("//") {
            return Err(PinotError::Metadata(format!("invalid path {path:?}")));
        }
        Ok(())
    }

    /// Open a liveness session.
    pub fn create_session(&self) -> SessionId {
        let mut inner = self.inner.lock();
        let id = inner.next_session;
        inner.next_session += 1;
        inner.live_sessions.push(id);
        id
    }

    /// Expire a session: its ephemeral nodes are deleted (with watch
    /// events), as when a Pinot node dies.
    pub fn expire_session(&self, session: SessionId) {
        let mut inner = self.inner.lock();
        inner.live_sessions.retain(|s| *s != session);
        let doomed: Vec<String> = inner
            .nodes
            .iter()
            .filter(|(_, n)| n.ephemeral_owner == Some(session))
            .map(|(p, _)| p.clone())
            .collect();
        for path in doomed {
            inner.nodes.remove(&path);
            notify(&mut inner, &path, WatchKind::Deleted, None);
        }
    }

    /// Create a node; fails if it already exists.
    pub fn create(
        &self,
        path: &str,
        value: impl Into<String>,
        ephemeral: Option<SessionId>,
    ) -> Result<()> {
        Self::validate_path(path)?;
        let mut inner = self.inner.lock();
        if let Some(s) = ephemeral {
            if !inner.live_sessions.contains(&s) {
                return Err(PinotError::Metadata(format!("session {s} is not live")));
            }
        }
        if inner.nodes.contains_key(path) {
            return Err(PinotError::Metadata(format!("node {path:?} exists")));
        }
        let value = value.into();
        inner.nodes.insert(
            path.to_string(),
            NodeData {
                value: value.clone(),
                version: 0,
                ephemeral_owner: ephemeral,
            },
        );
        notify(&mut inner, path, WatchKind::Created, Some(value));
        Ok(())
    }

    /// Write a node, creating it when absent. `expected_version` makes the
    /// write a compare-and-set. Returns the new version.
    pub fn set(
        &self,
        path: &str,
        value: impl Into<String>,
        expected_version: Option<u64>,
    ) -> Result<u64> {
        Self::validate_path(path)?;
        let mut inner = self.inner.lock();
        let value = value.into();
        match inner.nodes.get_mut(path) {
            Some(node) => {
                if let Some(ev) = expected_version {
                    if node.version != ev {
                        return Err(PinotError::Metadata(format!(
                            "version conflict on {path:?}: expected {ev}, found {}",
                            node.version
                        )));
                    }
                }
                node.value = value.clone();
                node.version += 1;
                let v = node.version;
                notify(&mut inner, path, WatchKind::Updated, Some(value));
                Ok(v)
            }
            None => {
                if expected_version.is_some() {
                    return Err(PinotError::Metadata(format!(
                        "version check on missing node {path:?}"
                    )));
                }
                inner.nodes.insert(
                    path.to_string(),
                    NodeData {
                        value: value.clone(),
                        version: 0,
                        ephemeral_owner: None,
                    },
                );
                notify(&mut inner, path, WatchKind::Created, Some(value));
                Ok(0)
            }
        }
    }

    /// Read a node's value and version.
    pub fn get(&self, path: &str) -> Option<(String, u64)> {
        self.inner
            .lock()
            .nodes
            .get(path)
            .map(|n| (n.value.clone(), n.version))
    }

    pub fn exists(&self, path: &str) -> bool {
        self.inner.lock().nodes.contains_key(path)
    }

    pub fn delete(&self, path: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.nodes.remove(path).is_none() {
            return Err(PinotError::Metadata(format!("node {path:?} not found")));
        }
        notify(&mut inner, path, WatchKind::Deleted, None);
        Ok(())
    }

    /// Immediate child names of a path (like ZooKeeper `getChildren`).
    pub fn children(&self, path: &str) -> Vec<String> {
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let inner = self.inner.lock();
        let mut out: Vec<String> = inner
            .nodes
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .map(|(k, _)| {
                let rest = &k[prefix.len()..];
                match rest.find('/') {
                    Some(i) => rest[..i].to_string(),
                    None => rest.to_string(),
                }
            })
            .collect();
        out.dedup();
        out
    }

    /// Subscribe to changes under a path prefix. Events created after the
    /// call are delivered on the returned channel.
    pub fn subscribe(&self, prefix: impl Into<String>) -> Receiver<WatchEvent> {
        let (tx, rx) = unbounded();
        self.inner.lock().watchers.push((prefix.into(), tx));
        rx
    }

    /// Attempt to become leader for `scope`. Returns true on success or if
    /// this candidate already is the leader.
    pub fn elect_leader(&self, scope: &str, session: SessionId, candidate: &str) -> Result<bool> {
        let path = format!("/leaders/{scope}");
        match self.create(&path, candidate, Some(session)) {
            Ok(()) => Ok(true),
            Err(_) => Ok(self
                .get(&path)
                .map(|(v, _)| v == candidate)
                .unwrap_or(false)),
        }
    }

    /// Current leader for `scope`, if any.
    pub fn leader(&self, scope: &str) -> Option<String> {
        self.get(&format!("/leaders/{scope}")).map(|(v, _)| v)
    }
}

fn notify(inner: &mut Inner, path: &str, kind: WatchKind, value: Option<String>) {
    let event = WatchEvent {
        path: path.to_string(),
        kind,
        value,
    };
    inner.watchers.retain(|(prefix, tx)| {
        !path.starts_with(prefix.as_str()) || tx.send(event.clone()).is_ok()
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_set_delete() {
        let ms = MetaStore::new();
        ms.create("/tables/foo", "cfg1", None).unwrap();
        assert!(ms.create("/tables/foo", "x", None).is_err());
        assert_eq!(ms.get("/tables/foo"), Some(("cfg1".into(), 0)));
        let v = ms.set("/tables/foo", "cfg2", None).unwrap();
        assert_eq!(v, 1);
        assert!(ms.exists("/tables/foo"));
        ms.delete("/tables/foo").unwrap();
        assert!(ms.delete("/tables/foo").is_err());
        assert_eq!(ms.get("/tables/foo"), None);
    }

    #[test]
    fn compare_and_set() {
        let ms = MetaStore::new();
        ms.set("/n", "a", None).unwrap();
        assert!(ms.set("/n", "b", Some(5)).is_err());
        let v = ms.set("/n", "b", Some(0)).unwrap();
        assert_eq!(v, 1);
        assert!(ms.set("/n", "c", Some(0)).is_err());
        assert!(ms.set("/missing", "x", Some(0)).is_err());
    }

    #[test]
    fn path_validation() {
        let ms = MetaStore::new();
        for p in ["", "nope", "/a/", "/a//b"] {
            assert!(ms.create(p, "x", None).is_err(), "{p:?}");
        }
    }

    #[test]
    fn children_listing() {
        let ms = MetaStore::new();
        ms.create("/t/a", "1", None).unwrap();
        ms.create("/t/b", "2", None).unwrap();
        ms.create("/t/b/c", "3", None).unwrap();
        ms.create("/other", "4", None).unwrap();
        assert_eq!(ms.children("/t"), vec!["a", "b"]);
        assert_eq!(ms.children("/t/b"), vec!["c"]);
        assert!(ms.children("/t/a").is_empty());
        assert_eq!(ms.children("/"), vec!["other", "t"]);
    }

    #[test]
    fn watches_fire_for_prefix() {
        let ms = MetaStore::new();
        let rx = ms.subscribe("/tables/");
        ms.create("/tables/foo", "v", None).unwrap();
        ms.set("/tables/foo", "v2", None).unwrap();
        ms.create("/ignored", "x", None).unwrap();
        ms.delete("/tables/foo").unwrap();
        let events: Vec<WatchEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, WatchKind::Created);
        assert_eq!(events[1].kind, WatchKind::Updated);
        assert_eq!(events[1].value.as_deref(), Some("v2"));
        assert_eq!(events[2].kind, WatchKind::Deleted);
    }

    #[test]
    fn ephemeral_nodes_die_with_session() {
        let ms = MetaStore::new();
        let s = ms.create_session();
        let rx = ms.subscribe("/live/");
        ms.create("/live/server1", "up", Some(s)).unwrap();
        ms.create("/live/server2", "up", Some(s)).unwrap();
        ms.create("/live/other", "up", None).unwrap();
        ms.expire_session(s);
        assert!(!ms.exists("/live/server1"));
        assert!(!ms.exists("/live/server2"));
        assert!(ms.exists("/live/other"));
        let deletions = rx
            .try_iter()
            .filter(|e| e.kind == WatchKind::Deleted)
            .count();
        assert_eq!(deletions, 2);
        // Dead sessions can't create ephemerals.
        assert!(ms.create("/live/server3", "up", Some(s)).is_err());
    }

    #[test]
    fn leader_election_and_failover() {
        let ms = MetaStore::new();
        let s1 = ms.create_session();
        let s2 = ms.create_session();
        assert!(ms.elect_leader("controllers", s1, "Controller_1").unwrap());
        assert!(!ms.elect_leader("controllers", s2, "Controller_2").unwrap());
        // Re-election by the current leader is a no-op success.
        assert!(ms.elect_leader("controllers", s1, "Controller_1").unwrap());
        assert_eq!(ms.leader("controllers").as_deref(), Some("Controller_1"));
        // Leader dies; the other candidate takes over.
        ms.expire_session(s1);
        assert_eq!(ms.leader("controllers"), None);
        assert!(ms.elect_leader("controllers", s2, "Controller_2").unwrap());
        assert_eq!(ms.leader("controllers").as_deref(), Some("Controller_2"));
    }
}
