//! Concurrency tests for the metastore: compare-and-set linearizes
//! concurrent writers, watches observe every committed change, and leader
//! election admits exactly one leader under contention.

use pinot_metastore::{MetaStore, WatchKind};
use std::sync::Arc;
use std::thread;

#[test]
fn cas_counter_under_contention() {
    let ms = MetaStore::new();
    ms.set("/counter", "0", None).unwrap();
    let ms = Arc::new(ms);
    let threads = 8;
    let increments_each = 200;

    thread::scope(|scope| {
        for _ in 0..threads {
            let ms = Arc::clone(&ms);
            scope.spawn(move || {
                for _ in 0..increments_each {
                    loop {
                        let (value, version) = ms.get("/counter").unwrap();
                        let next = value.parse::<u64>().unwrap() + 1;
                        if ms.set("/counter", next.to_string(), Some(version)).is_ok() {
                            break;
                        }
                        // Version conflict: somebody else won; retry.
                    }
                }
            });
        }
    });

    let (value, _) = ms.get("/counter").unwrap();
    assert_eq!(
        value.parse::<u64>().unwrap(),
        (threads * increments_each) as u64,
        "CAS must not lose increments"
    );
}

#[test]
fn watches_see_every_committed_write() {
    let ms = MetaStore::new();
    let rx = ms.subscribe("/data/");
    let ms = Arc::new(ms);
    let writers = 4;
    let writes_each = 100;

    thread::scope(|scope| {
        for w in 0..writers {
            let ms = Arc::clone(&ms);
            scope.spawn(move || {
                for i in 0..writes_each {
                    ms.set(&format!("/data/w{w}/k{i}"), "v", None).unwrap();
                }
            });
        }
    });

    let events: Vec<_> = rx.try_iter().collect();
    assert_eq!(events.len(), writers * writes_each);
    assert!(events.iter().all(|e| e.kind == WatchKind::Created));
}

#[test]
fn single_leader_under_racing_candidates() {
    let ms = Arc::new(MetaStore::new());
    let candidates = 8;
    let winners: Vec<bool> = thread::scope(|scope| {
        let handles: Vec<_> = (0..candidates)
            .map(|i| {
                let ms = Arc::clone(&ms);
                scope.spawn(move || {
                    let session = ms.create_session();
                    ms.elect_leader("race", session, &format!("cand_{i}"))
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        winners.iter().filter(|w| **w).count(),
        1,
        "exactly one candidate may win"
    );
    assert!(ms.leader("race").is_some());
}

#[test]
fn concurrent_ephemeral_expiry_is_clean() {
    let ms = Arc::new(MetaStore::new());
    let sessions: Vec<_> = (0..6).map(|_| ms.create_session()).collect();
    for (i, s) in sessions.iter().enumerate() {
        for k in 0..20 {
            ms.create(&format!("/eph/s{i}/k{k}"), "x", Some(*s))
                .unwrap();
        }
    }
    thread::scope(|scope| {
        for s in &sessions {
            let ms = Arc::clone(&ms);
            let s = *s;
            scope.spawn(move || ms.expire_session(s));
        }
    });
    assert!(ms
        .children("/eph")
        .iter()
        .all(|c| ms.children(&format!("/eph/{c}")).is_empty()));
}
