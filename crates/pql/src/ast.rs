//! PQL abstract syntax tree.

use pinot_common::Value;
use std::fmt;

/// Aggregation functions supported by PQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunction {
    Count,
    Sum,
    Min,
    Max,
    Avg,
    /// Exact distinct count — requires raw data, never preaggregates.
    DistinctCount,
}

impl AggFunction {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunction::Count => "count",
            AggFunction::Sum => "sum",
            AggFunction::Min => "min",
            AggFunction::Max => "max",
            AggFunction::Avg => "avg",
            AggFunction::DistinctCount => "distinctcount",
        }
    }

    /// Whether a star-tree's SUM/MIN/MAX/COUNT preaggregates can answer it.
    pub fn star_tree_compatible(&self) -> bool {
        !matches!(self, AggFunction::DistinctCount)
    }
}

/// One aggregation expression, e.g. `SUM(clicks)` or `COUNT(*)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggregateExpr {
    pub function: AggFunction,
    /// `None` for `COUNT(*)`.
    pub column: Option<String>,
}

impl fmt::Display for AggregateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({})",
            self.function.name(),
            self.column.as_deref().unwrap_or("*")
        )
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Filter predicate tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    And(Vec<Predicate>),
    Or(Vec<Predicate>),
    Not(Box<Predicate>),
    Cmp {
        column: String,
        op: CmpOp,
        value: Value,
    },
    In {
        column: String,
        values: Vec<Value>,
        negated: bool,
    },
    Between {
        column: String,
        low: Value,
        high: Value,
    },
}

impl Predicate {
    /// All column names referenced anywhere in the predicate.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::Cmp { column, .. }
            | Predicate::In { column, .. }
            | Predicate::Between { column, .. } => out.push(column),
        }
    }
}

/// What the query selects.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectList {
    /// `SELECT *`
    Star,
    /// `SELECT colA, colB`
    Projections(Vec<String>),
    /// `SELECT SUM(a), COUNT(*)`
    Aggregations(Vec<AggregateExpr>),
}

/// A parsed PQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub table: String,
    pub select: SelectList,
    pub filter: Option<Predicate>,
    pub group_by: Vec<String>,
    /// `TOP n` — groups returned per aggregation (group-by queries).
    pub top: Option<usize>,
    /// `LIMIT n` — rows returned (selection queries).
    pub limit: Option<usize>,
}

impl Query {
    pub fn is_aggregation(&self) -> bool {
        matches!(self.select, SelectList::Aggregations(_))
    }

    pub fn aggregations(&self) -> &[AggregateExpr] {
        match &self.select {
            SelectList::Aggregations(a) => a,
            _ => &[],
        }
    }

    /// Effective group cap: `TOP n`, defaulting to 10 as in Pinot.
    pub fn effective_top(&self) -> usize {
        self.top.unwrap_or(10)
    }

    /// Effective selection row cap: `LIMIT n`, defaulting to 10.
    pub fn effective_limit(&self) -> usize {
        self.limit.unwrap_or(10)
    }

    /// Canonical textual form of the parsed query, used as the broker's
    /// result-cache key. Two PQL strings that parse to the same semantics
    /// — different keyword case, whitespace, or commutative conjunct/IN
    /// order — normalize to one key; any semantic difference (constants,
    /// operators, columns, effective TOP/LIMIT) yields a different key.
    pub fn normalized(&self) -> String {
        let select = match &self.select {
            SelectList::Star => "*".to_string(),
            SelectList::Projections(cols) => cols.join(","),
            SelectList::Aggregations(aggs) => aggs
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(","),
        };
        let filter = self
            .filter
            .as_ref()
            .map(normalize_predicate)
            .unwrap_or_default();
        format!(
            "select={select}|table={}|where={filter}|group={}|top={}|limit={}",
            self.table,
            self.group_by.join(","),
            self.effective_top(),
            self.effective_limit(),
        )
    }

    /// All columns the query touches (select + filter + group by).
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut cols: Vec<&str> = Vec::new();
        match &self.select {
            SelectList::Star => {}
            SelectList::Projections(ps) => cols.extend(ps.iter().map(String::as_str)),
            SelectList::Aggregations(aggs) => {
                cols.extend(aggs.iter().filter_map(|a| a.column.as_deref()))
            }
        }
        if let Some(f) = &self.filter {
            cols.extend(f.columns());
        }
        cols.extend(self.group_by.iter().map(String::as_str));
        cols.sort_unstable();
        cols.dedup();
        cols
    }
}

/// Canonical rendering of a predicate tree. AND/OR children and IN value
/// lists are sorted by their rendered form — commutative reorderings of
/// the same filter produce the same key without changing semantics.
fn normalize_predicate(p: &Predicate) -> String {
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            let op = if matches!(p, Predicate::And(_)) {
                "and"
            } else {
                "or"
            };
            let mut parts: Vec<String> = ps.iter().map(normalize_predicate).collect();
            parts.sort_unstable();
            format!("{op}({})", parts.join(","))
        }
        Predicate::Not(inner) => format!("not({})", normalize_predicate(inner)),
        Predicate::Cmp { column, op, value } => {
            format!("cmp({column},{},{value:?})", op.symbol())
        }
        Predicate::In {
            column,
            values,
            negated,
        } => {
            let mut vs: Vec<String> = values.iter().map(|v| format!("{v:?}")).collect();
            vs.sort_unstable();
            format!("in({column},neg={negated},[{}])", vs.join(","))
        }
        Predicate::Between { column, low, high } => {
            format!("between({column},{low:?},{high:?})")
        }
    }
}

/// A top-level PQL statement: a plain query, or one of the EXPLAIN forms
/// wrapping a query for the profiling plane.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(Query),
    /// `EXPLAIN PLAN FOR SELECT ...` — render the per-segment plan
    /// decision tree without executing.
    ExplainPlan(Query),
    /// `EXPLAIN ANALYZE SELECT ...` — execute with profiling and attach
    /// measured per-operator stats to the rendered plan.
    ExplainAnalyze(Query),
}

impl Statement {
    /// The query underneath, whichever form the statement takes.
    pub fn query(&self) -> &Query {
        match self {
            Statement::Select(q) | Statement::ExplainPlan(q) | Statement::ExplainAnalyze(q) => q,
        }
    }

    pub fn is_explain(&self) -> bool {
        !matches!(self, Statement::Select(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_columns_dedup() {
        let p = Predicate::And(vec![
            Predicate::Cmp {
                column: "a".into(),
                op: CmpOp::Eq,
                value: Value::Int(1),
            },
            Predicate::Or(vec![
                Predicate::Cmp {
                    column: "b".into(),
                    op: CmpOp::Gt,
                    value: Value::Int(2),
                },
                Predicate::Not(Box::new(Predicate::In {
                    column: "a".into(),
                    values: vec![],
                    negated: false,
                })),
            ]),
        ]);
        assert_eq!(p.columns(), vec!["a", "b"]);
    }

    #[test]
    fn query_referenced_columns() {
        let q = Query {
            table: "t".into(),
            select: SelectList::Aggregations(vec![AggregateExpr {
                function: AggFunction::Sum,
                column: Some("m".into()),
            }]),
            filter: Some(Predicate::Cmp {
                column: "d".into(),
                op: CmpOp::Eq,
                value: Value::Int(1),
            }),
            group_by: vec!["g".into()],
            top: None,
            limit: None,
        };
        assert_eq!(q.referenced_columns(), vec!["d", "g", "m"]);
        assert!(q.is_aggregation());
        assert_eq!(q.effective_top(), 10);
    }

    #[test]
    fn normalized_collapses_textual_variants() {
        let a = crate::parser::parse("SELECT SUM(clicks) FROM t WHERE a = 1 AND b = 2").unwrap();
        let b = crate::parser::parse("select  sum(clicks)  from t where b = 2 and a = 1").unwrap();
        assert_eq!(a.normalized(), b.normalized());

        // Explicit defaults normalize with implicit ones.
        let c = crate::parser::parse("SELECT COUNT(*) FROM t GROUP BY g TOP 10").unwrap();
        let d = crate::parser::parse("SELECT COUNT(*) FROM t GROUP BY g").unwrap();
        assert_eq!(c.normalized(), d.normalized());

        // IN lists are order-insensitive.
        let e = crate::parser::parse("SELECT COUNT(*) FROM t WHERE c IN ('x', 'y')").unwrap();
        let f = crate::parser::parse("SELECT COUNT(*) FROM t WHERE c IN ('y', 'x')").unwrap();
        assert_eq!(e.normalized(), f.normalized());
    }

    #[test]
    fn normalized_separates_semantic_differences() {
        let parse = crate::parser::parse;
        let base = parse("SELECT COUNT(*) FROM t WHERE a = 1")
            .unwrap()
            .normalized();
        for other in [
            "SELECT COUNT(*) FROM t WHERE a = 2",
            "SELECT COUNT(*) FROM t WHERE a != 1",
            "SELECT COUNT(*) FROM t WHERE b = 1",
            "SELECT SUM(a) FROM t WHERE a = 1",
            "SELECT COUNT(*) FROM u WHERE a = 1",
            "SELECT COUNT(*) FROM t WHERE a = 1 OR a = 1",
            "SELECT COUNT(*) FROM t WHERE NOT a = 1",
        ] {
            assert_ne!(base, parse(other).unwrap().normalized(), "{other}");
        }
        // AND vs OR over the same children must not collide.
        let and = parse("SELECT COUNT(*) FROM t WHERE a = 1 AND b = 2").unwrap();
        let or = parse("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2").unwrap();
        assert_ne!(and.normalized(), or.normalized());
    }

    #[test]
    fn agg_display() {
        let a = AggregateExpr {
            function: AggFunction::Count,
            column: None,
        };
        assert_eq!(a.to_string(), "count(*)");
        let s = AggregateExpr {
            function: AggFunction::DistinctCount,
            column: Some("viewer".into()),
        };
        assert_eq!(s.to_string(), "distinctcount(viewer)");
        assert!(!AggFunction::DistinctCount.star_tree_compatible());
        assert!(AggFunction::Avg.star_tree_compatible());
    }
}
