//! PQL abstract syntax tree.

use pinot_common::Value;
use std::fmt;

/// Aggregation functions supported by PQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunction {
    Count,
    Sum,
    Min,
    Max,
    Avg,
    /// Exact distinct count — requires raw data, never preaggregates.
    DistinctCount,
}

impl AggFunction {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunction::Count => "count",
            AggFunction::Sum => "sum",
            AggFunction::Min => "min",
            AggFunction::Max => "max",
            AggFunction::Avg => "avg",
            AggFunction::DistinctCount => "distinctcount",
        }
    }

    /// Whether a star-tree's SUM/MIN/MAX/COUNT preaggregates can answer it.
    pub fn star_tree_compatible(&self) -> bool {
        !matches!(self, AggFunction::DistinctCount)
    }
}

/// One aggregation expression, e.g. `SUM(clicks)` or `COUNT(*)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggregateExpr {
    pub function: AggFunction,
    /// `None` for `COUNT(*)`.
    pub column: Option<String>,
}

impl fmt::Display for AggregateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({})",
            self.function.name(),
            self.column.as_deref().unwrap_or("*")
        )
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Filter predicate tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    And(Vec<Predicate>),
    Or(Vec<Predicate>),
    Not(Box<Predicate>),
    Cmp {
        column: String,
        op: CmpOp,
        value: Value,
    },
    In {
        column: String,
        values: Vec<Value>,
        negated: bool,
    },
    Between {
        column: String,
        low: Value,
        high: Value,
    },
}

impl Predicate {
    /// All column names referenced anywhere in the predicate.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::Cmp { column, .. }
            | Predicate::In { column, .. }
            | Predicate::Between { column, .. } => out.push(column),
        }
    }
}

/// What the query selects.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectList {
    /// `SELECT *`
    Star,
    /// `SELECT colA, colB`
    Projections(Vec<String>),
    /// `SELECT SUM(a), COUNT(*)`
    Aggregations(Vec<AggregateExpr>),
}

/// A parsed PQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub table: String,
    pub select: SelectList,
    pub filter: Option<Predicate>,
    pub group_by: Vec<String>,
    /// `TOP n` — groups returned per aggregation (group-by queries).
    pub top: Option<usize>,
    /// `LIMIT n` — rows returned (selection queries).
    pub limit: Option<usize>,
}

impl Query {
    pub fn is_aggregation(&self) -> bool {
        matches!(self.select, SelectList::Aggregations(_))
    }

    pub fn aggregations(&self) -> &[AggregateExpr] {
        match &self.select {
            SelectList::Aggregations(a) => a,
            _ => &[],
        }
    }

    /// Effective group cap: `TOP n`, defaulting to 10 as in Pinot.
    pub fn effective_top(&self) -> usize {
        self.top.unwrap_or(10)
    }

    /// Effective selection row cap: `LIMIT n`, defaulting to 10.
    pub fn effective_limit(&self) -> usize {
        self.limit.unwrap_or(10)
    }

    /// All columns the query touches (select + filter + group by).
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut cols: Vec<&str> = Vec::new();
        match &self.select {
            SelectList::Star => {}
            SelectList::Projections(ps) => cols.extend(ps.iter().map(String::as_str)),
            SelectList::Aggregations(aggs) => {
                cols.extend(aggs.iter().filter_map(|a| a.column.as_deref()))
            }
        }
        if let Some(f) = &self.filter {
            cols.extend(f.columns());
        }
        cols.extend(self.group_by.iter().map(String::as_str));
        cols.sort_unstable();
        cols.dedup();
        cols
    }
}

/// A top-level PQL statement: a plain query, or one of the EXPLAIN forms
/// wrapping a query for the profiling plane.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(Query),
    /// `EXPLAIN PLAN FOR SELECT ...` — render the per-segment plan
    /// decision tree without executing.
    ExplainPlan(Query),
    /// `EXPLAIN ANALYZE SELECT ...` — execute with profiling and attach
    /// measured per-operator stats to the rendered plan.
    ExplainAnalyze(Query),
}

impl Statement {
    /// The query underneath, whichever form the statement takes.
    pub fn query(&self) -> &Query {
        match self {
            Statement::Select(q) | Statement::ExplainPlan(q) | Statement::ExplainAnalyze(q) => q,
        }
    }

    pub fn is_explain(&self) -> bool {
        !matches!(self, Statement::Select(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_columns_dedup() {
        let p = Predicate::And(vec![
            Predicate::Cmp {
                column: "a".into(),
                op: CmpOp::Eq,
                value: Value::Int(1),
            },
            Predicate::Or(vec![
                Predicate::Cmp {
                    column: "b".into(),
                    op: CmpOp::Gt,
                    value: Value::Int(2),
                },
                Predicate::Not(Box::new(Predicate::In {
                    column: "a".into(),
                    values: vec![],
                    negated: false,
                })),
            ]),
        ]);
        assert_eq!(p.columns(), vec!["a", "b"]);
    }

    #[test]
    fn query_referenced_columns() {
        let q = Query {
            table: "t".into(),
            select: SelectList::Aggregations(vec![AggregateExpr {
                function: AggFunction::Sum,
                column: Some("m".into()),
            }]),
            filter: Some(Predicate::Cmp {
                column: "d".into(),
                op: CmpOp::Eq,
                value: Value::Int(1),
            }),
            group_by: vec!["g".into()],
            top: None,
            limit: None,
        };
        assert_eq!(q.referenced_columns(), vec!["d", "g", "m"]);
        assert!(q.is_aggregation());
        assert_eq!(q.effective_top(), 10);
    }

    #[test]
    fn agg_display() {
        let a = AggregateExpr {
            function: AggFunction::Count,
            column: None,
        };
        assert_eq!(a.to_string(), "count(*)");
        let s = AggregateExpr {
            function: AggFunction::DistinctCount,
            column: Some("viewer".into()),
        };
        assert_eq!(s.to_string(), "distinctcount(viewer)");
        assert!(!AggFunction::DistinctCount.star_tree_compatible());
        assert!(AggFunction::Avg.star_tree_compatible());
    }
}
