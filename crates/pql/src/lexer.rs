//! PQL tokenizer.

use pinot_common::{PinotError, Result};

/// Lexical token. Keywords are case-insensitive and surfaced as `Kw`.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier (column/table names, unrecognized words).
    Ident(String),
    /// Single-quoted literal.
    Str(String),
    Int(i64),
    Float(f64),
    /// Uppercased keyword: SELECT, FROM, WHERE, AND, OR, NOT, IN, BETWEEN,
    /// GROUP, BY, TOP, LIMIT, TRUE, FALSE, EXPLAIN, PLAN, FOR, ANALYZE.
    Kw(&'static str),
    LParen,
    RParen,
    Comma,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "BETWEEN", "GROUP", "BY", "TOP", "LIMIT",
    "TRUE", "FALSE", "EXPLAIN", "PLAN", "FOR", "ANALYZE",
];

/// Tokenize PQL text.
pub fn tokenize(text: &str) -> Result<Vec<Token>> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    let err =
        |pos: usize, msg: &str| PinotError::InvalidQuery(format!("lex error at byte {pos}: {msg}"));
    while pos < bytes.len() {
        let c = bytes[pos];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => pos += 1,
            b'(' => {
                out.push(Token::LParen);
                pos += 1;
            }
            b')' => {
                out.push(Token::RParen);
                pos += 1;
            }
            b',' => {
                out.push(Token::Comma);
                pos += 1;
            }
            b'*' => {
                out.push(Token::Star);
                pos += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                pos += 1;
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    pos += 2;
                } else {
                    return Err(err(pos, "expected != "));
                }
            }
            b'<' => match bytes.get(pos + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    pos += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    pos += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    pos += 1;
                }
            },
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    pos += 2;
                } else {
                    out.push(Token::Gt);
                    pos += 1;
                }
            }
            b'\'' => {
                // Single-quoted string; '' escapes a quote.
                let mut s = String::new();
                pos += 1;
                loop {
                    match bytes.get(pos) {
                        None => return Err(err(pos, "unterminated string literal")),
                        Some(b'\'') => {
                            if bytes.get(pos + 1) == Some(&b'\'') {
                                s.push('\'');
                                pos += 2;
                            } else {
                                pos += 1;
                                break;
                            }
                        }
                        Some(&b) if b < 0x80 => {
                            s.push(b as char);
                            pos += 1;
                        }
                        Some(_) => {
                            // Copy the full UTF-8 character.
                            let rest = &text[pos..];
                            let ch = rest.chars().next().unwrap();
                            s.push(ch);
                            pos += ch.len_utf8();
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            b'-' | b'0'..=b'9' => {
                let start = pos;
                if c == b'-' {
                    pos += 1;
                    if !matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                        return Err(err(start, "expected digits after '-'"));
                    }
                }
                while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                    pos += 1;
                }
                let mut is_float = false;
                if bytes.get(pos) == Some(&b'.') {
                    is_float = true;
                    pos += 1;
                    while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                        pos += 1;
                    }
                }
                if matches!(bytes.get(pos), Some(b'e' | b'E')) {
                    is_float = true;
                    pos += 1;
                    if matches!(bytes.get(pos), Some(b'+' | b'-')) {
                        pos += 1;
                    }
                    while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                        pos += 1;
                    }
                }
                let s = &text[start..pos];
                if is_float {
                    out.push(Token::Float(
                        s.parse().map_err(|_| err(start, "bad float literal"))?,
                    ));
                } else {
                    out.push(Token::Int(
                        s.parse().map_err(|_| err(start, "bad integer literal"))?,
                    ));
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = pos;
                while matches!(
                    bytes.get(pos),
                    Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'.')
                ) {
                    pos += 1;
                }
                let word = &text[start..pos];
                let upper = word.to_ascii_uppercase();
                if let Some(kw) = KEYWORDS.iter().find(|k| **k == upper) {
                    out.push(Token::Kw(kw));
                } else {
                    out.push(Token::Ident(word.to_string()));
                }
            }
            _ => return Err(err(pos, &format!("unexpected character {:?}", c as char))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_paper_query() {
        let toks = tokenize(
            "SELECT campaignId, sum(click) FROM TableA WHERE accountId = 121011 AND 'day' >= 15949 GROUP BY campaignId",
        )
        .unwrap();
        assert!(toks.contains(&Token::Kw("SELECT")));
        assert!(toks.contains(&Token::Ident("campaignId".into())));
        assert!(toks.contains(&Token::Str("day".into())));
        assert!(toks.contains(&Token::Int(121011)));
        assert!(toks.contains(&Token::Ge));
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select FROM Where aNd").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Kw("SELECT"),
                Token::Kw("FROM"),
                Token::Kw("WHERE"),
                Token::Kw("AND")
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(tokenize("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(tokenize("-7").unwrap(), vec![Token::Int(-7)]);
        assert_eq!(tokenize("3.5").unwrap(), vec![Token::Float(3.5)]);
        assert_eq!(tokenize("1e3").unwrap(), vec![Token::Float(1000.0)]);
        assert!(tokenize("- ").is_err());
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            tokenize("'it''s'").unwrap(),
            vec![Token::Str("it's".into())]
        );
        assert_eq!(
            tokenize("'héllo'").unwrap(),
            vec![Token::Str("héllo".into())]
        );
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn operators() {
        let toks = tokenize("= != <> < <= > >=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge
            ]
        );
        assert!(tokenize("!x").is_err());
        assert!(tokenize("#").is_err());
    }

    #[test]
    fn dotted_identifiers() {
        assert_eq!(
            tokenize("ns.table").unwrap(),
            vec![Token::Ident("ns.table".into())]
        );
    }
}
