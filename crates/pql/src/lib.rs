//! PQL — Pinot Query Language (§3.1).
//!
//! PQL is a subset of SQL: selection, projection, aggregation and top-n
//! queries over a single table. By design (matching the paper) there are
//! **no** joins, nested queries, DDL, or record-level mutation statements.
//!
//! Grammar (informal):
//!
//! ```text
//! statement  := query
//!             | EXPLAIN PLAN FOR query
//!             | EXPLAIN ANALYZE query
//! query      := SELECT select_list FROM ident [WHERE predicate]
//!               [GROUP BY ident (, ident)*] [TOP number] [LIMIT number]
//! select_list:= '*' | projection (, projection)* | agg (, agg)*
//! agg        := (COUNT|SUM|MIN|MAX|AVG|DISTINCTCOUNT) '(' ('*'|ident) ')'
//! predicate  := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | '(' predicate ')' | comparison
//! comparison := operand (=|!=|<>|<|<=|>|>=) literal
//!             | operand [NOT] IN '(' literal (, literal)* ')'
//!             | operand BETWEEN literal AND literal
//! ```
//!
//! String literals use single quotes; identifiers may also be quoted with
//! single quotes on the left-hand side of a comparison (the paper's example
//! query writes `'day' >= 15949`).

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{AggFunction, AggregateExpr, CmpOp, Predicate, Query, SelectList, Statement};
pub use parser::{parse, parse_statement};
