//! Recursive-descent PQL parser.

use crate::ast::{AggFunction, AggregateExpr, CmpOp, Predicate, Query, SelectList, Statement};
use crate::lexer::{tokenize, Token};
use pinot_common::{PinotError, Result, Value};

/// Parse a PQL query string into an AST.
pub fn parse(text: &str) -> Result<Query> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(q)
}

/// Parse a top-level statement: a plain query, `EXPLAIN PLAN FOR <query>`,
/// or `EXPLAIN ANALYZE <query>`.
pub fn parse_statement(text: &str) -> Result<Statement> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = if p.eat_kw("EXPLAIN") {
        if p.eat_kw("ANALYZE") {
            Statement::ExplainAnalyze(p.query()?)
        } else {
            p.expect_kw("PLAN")?;
            p.expect_kw("FOR")?;
            Statement::ExplainPlan(p.query()?)
        }
    } else {
        Statement::Select(p.query()?)
    };
    if p.pos != p.tokens.len() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> PinotError {
        PinotError::InvalidQuery(format!(
            "parse error near token {} ({:?}): {msg}",
            self.pos,
            self.tokens.get(self.pos)
        ))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Kw(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kw}")))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {t:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::Str(s)) => Ok(s), // quoted identifiers ('day')
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("SELECT")?;
        let select = self.select_list()?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.predicate()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.ident()?);
                if !matches!(self.peek(), Some(Token::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        let mut top = None;
        if self.eat_kw("TOP") {
            top = Some(self.positive_int()? as usize);
        }
        let mut limit = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.positive_int()? as usize);
        }

        let q = Query {
            table,
            select,
            filter,
            group_by,
            top,
            limit,
        };
        validate(&q)?;
        Ok(q)
    }

    fn positive_int(&mut self) -> Result<i64> {
        match self.bump() {
            Some(Token::Int(n)) if n >= 0 => Ok(n),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a non-negative integer"))
            }
        }
    }

    fn select_list(&mut self) -> Result<SelectList> {
        if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            return Ok(SelectList::Star);
        }
        // Look ahead: `ident (` means an aggregation call.
        let mut aggs = Vec::new();
        let mut projections = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Ident(name))
                    if self.tokens.get(self.pos + 1) == Some(&Token::LParen) =>
                {
                    let func = agg_function(name).ok_or_else(|| {
                        self.err(&format!("unknown aggregation function {name:?}"))
                    })?;
                    self.pos += 2; // ident + lparen
                    let column = if matches!(self.peek(), Some(Token::Star)) {
                        self.pos += 1;
                        None
                    } else {
                        Some(self.ident()?)
                    };
                    self.expect(&Token::RParen)?;
                    if column.is_none() && func != AggFunction::Count {
                        return Err(self.err("only COUNT supports (*)"));
                    }
                    aggs.push(AggregateExpr {
                        function: func,
                        column,
                    });
                }
                _ => {
                    projections.push(self.ident()?);
                }
            }
            if !matches!(self.peek(), Some(Token::Comma)) {
                break;
            }
            self.pos += 1;
        }
        match (aggs.is_empty(), projections.is_empty()) {
            (false, true) => Ok(SelectList::Aggregations(aggs)),
            (true, false) => Ok(SelectList::Projections(projections)),
            (false, false) => {
                // `SELECT campaignId, sum(click) ... GROUP BY campaignId`:
                // PQL treats projected group-by columns as implicit; we keep
                // only the aggregations (the group keys come back anyway).
                Ok(SelectList::Aggregations(aggs))
            }
            (true, true) => Err(self.err("empty select list")),
        }
    }

    fn predicate(&mut self) -> Result<Predicate> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Predicate> {
        let mut parts = vec![self.and_expr()?];
        while self.eat_kw("OR") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Predicate::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Predicate> {
        let mut parts = vec![self.not_expr()?];
        while self.eat_kw("AND") {
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Predicate::And(parts)
        })
    }

    fn not_expr(&mut self) -> Result<Predicate> {
        if self.eat_kw("NOT") {
            return Ok(Predicate::Not(Box::new(self.not_expr()?)));
        }
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let p = self.predicate()?;
            self.expect(&Token::RParen)?;
            return Ok(p);
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Predicate> {
        let column = self.ident()?;
        match self.bump() {
            Some(Token::Eq) => Ok(Predicate::Cmp {
                column,
                op: CmpOp::Eq,
                value: self.literal()?,
            }),
            Some(Token::Ne) => Ok(Predicate::Cmp {
                column,
                op: CmpOp::Ne,
                value: self.literal()?,
            }),
            Some(Token::Lt) => Ok(Predicate::Cmp {
                column,
                op: CmpOp::Lt,
                value: self.literal()?,
            }),
            Some(Token::Le) => Ok(Predicate::Cmp {
                column,
                op: CmpOp::Le,
                value: self.literal()?,
            }),
            Some(Token::Gt) => Ok(Predicate::Cmp {
                column,
                op: CmpOp::Gt,
                value: self.literal()?,
            }),
            Some(Token::Ge) => Ok(Predicate::Cmp {
                column,
                op: CmpOp::Ge,
                value: self.literal()?,
            }),
            Some(Token::Kw("IN")) => self.in_list(column, false),
            Some(Token::Kw("NOT")) => {
                self.expect_kw("IN")?;
                self.in_list(column, true)
            }
            Some(Token::Kw("BETWEEN")) => {
                let low = self.literal()?;
                self.expect_kw("AND")?;
                let high = self.literal()?;
                Ok(Predicate::Between { column, low, high })
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a comparison operator"))
            }
        }
    }

    fn in_list(&mut self, column: String, negated: bool) -> Result<Predicate> {
        self.expect(&Token::LParen)?;
        let mut values = vec![self.literal()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.pos += 1;
            values.push(self.literal()?);
        }
        self.expect(&Token::RParen)?;
        Ok(Predicate::In {
            column,
            values,
            negated,
        })
    }

    fn literal(&mut self) -> Result<Value> {
        match self.bump() {
            Some(Token::Int(n)) => Ok(Value::Long(n)),
            Some(Token::Float(f)) => Ok(Value::Double(f)),
            Some(Token::Str(s)) => Ok(Value::String(s)),
            Some(Token::Kw("TRUE")) => Ok(Value::Boolean(true)),
            Some(Token::Kw("FALSE")) => Ok(Value::Boolean(false)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a literal"))
            }
        }
    }
}

fn agg_function(name: &str) -> Option<AggFunction> {
    match name.to_ascii_lowercase().as_str() {
        "count" => Some(AggFunction::Count),
        "sum" => Some(AggFunction::Sum),
        "min" => Some(AggFunction::Min),
        "max" => Some(AggFunction::Max),
        "avg" => Some(AggFunction::Avg),
        "distinctcount" => Some(AggFunction::DistinctCount),
        _ => None,
    }
}

/// Semantic checks beyond the grammar.
fn validate(q: &Query) -> Result<()> {
    if !q.group_by.is_empty() && !q.is_aggregation() {
        return Err(PinotError::InvalidQuery(
            "GROUP BY requires aggregation functions in the select list".into(),
        ));
    }
    if q.top.is_some() && q.group_by.is_empty() {
        return Err(PinotError::InvalidQuery(
            "TOP requires a GROUP BY clause".into(),
        ));
    }
    if q.is_aggregation() && q.aggregations().is_empty() {
        return Err(PinotError::InvalidQuery("no aggregations".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        // Figure 7's query.
        let q = parse(
            "SELECT campaignId, sum(click) FROM TableA \
             WHERE accountId = 121011 AND 'day' >= 15949 GROUP BY campaignId",
        )
        .unwrap();
        assert_eq!(q.table, "TableA");
        assert_eq!(q.group_by, vec!["campaignId"]);
        let aggs = q.aggregations();
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].function, AggFunction::Sum);
        assert_eq!(aggs[0].column.as_deref(), Some("click"));
        match q.filter.unwrap() {
            Predicate::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(
                    &parts[1],
                    Predicate::Cmp { column, op: CmpOp::Ge, value: Value::Long(15949) }
                        if column == "day"
                ));
            }
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure9_and_10() {
        let q = parse("SELECT sum(Impressions) FROM T WHERE Browser = 'firefox'").unwrap();
        assert!(q.filter.is_some());
        let q = parse(
            "SELECT sum(Impressions) FROM T WHERE Browser = 'firefox' OR Browser = 'safari' GROUP BY Country",
        )
        .unwrap();
        assert!(matches!(q.filter, Some(Predicate::Or(_))));
        assert_eq!(q.group_by, vec!["Country"]);
    }

    #[test]
    fn count_star_and_multiple_aggs() {
        let q = parse("SELECT COUNT(*), MAX(lat), avg(lon) FROM geo").unwrap();
        let aggs = q.aggregations();
        assert_eq!(aggs.len(), 3);
        assert_eq!(aggs[0].column, None);
        assert_eq!(aggs[1].function, AggFunction::Max);
        assert_eq!(aggs[2].function, AggFunction::Avg);
    }

    #[test]
    fn selection_with_limit() {
        let q = parse("SELECT a, b FROM t WHERE c IN (1, 2, 3) LIMIT 50").unwrap();
        assert_eq!(
            q.select,
            SelectList::Projections(vec!["a".into(), "b".into()])
        );
        assert_eq!(q.limit, Some(50));
        assert!(matches!(
            q.filter,
            Some(Predicate::In { negated: false, .. })
        ));
    }

    #[test]
    fn select_star() {
        let q = parse("SELECT * FROM t LIMIT 5").unwrap();
        assert_eq!(q.select, SelectList::Star);
    }

    #[test]
    fn not_in_and_between_and_not() {
        let q = parse(
            "SELECT COUNT(*) FROM t WHERE a NOT IN ('x','y') AND b BETWEEN 1 AND 10 AND NOT c = 5",
        )
        .unwrap();
        match q.filter.unwrap() {
            Predicate::And(parts) => {
                assert!(matches!(&parts[0], Predicate::In { negated: true, .. }));
                assert!(matches!(
                    &parts[1],
                    Predicate::Between {
                        low: Value::Long(1),
                        high: Value::Long(10),
                        ..
                    }
                ));
                assert!(matches!(&parts[2], Predicate::Not(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_or_binds_looser_than_and() {
        let q = parse("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match q.filter.unwrap() {
            Predicate::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(&parts[1], Predicate::And(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parenthesized_predicates() {
        let q = parse("SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        match q.filter.unwrap() {
            Predicate::And(parts) => assert!(matches!(&parts[0], Predicate::Or(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn top_n() {
        let q = parse("SELECT SUM(m) FROM t GROUP BY g TOP 100").unwrap();
        assert_eq!(q.top, Some(100));
        assert_eq!(q.effective_top(), 100);
    }

    #[test]
    fn rejects_invalid_queries() {
        // No joins or nested queries, per the paper.
        assert!(parse("SELECT a FROM t JOIN u").is_err());
        assert!(parse("SELECT a FROM (SELECT b FROM t)").is_err());
        // Grammar violations.
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t GROUP BY").is_err());
    }

    #[test]
    fn unknown_function_is_error() {
        assert!(parse("SELECT median(a) FROM t").is_err());
        assert!(parse("SELECT sum(*) FROM t").is_err());
    }

    #[test]
    fn group_by_without_aggregation_is_error() {
        assert!(parse("SELECT a FROM t GROUP BY a").is_err());
        assert!(parse("SELECT a FROM t TOP 5").is_err());
    }

    #[test]
    fn mixed_projection_and_agg_keeps_aggs() {
        let q = parse("SELECT g, SUM(m) FROM t GROUP BY g").unwrap();
        assert!(q.is_aggregation());
        assert_eq!(q.aggregations().len(), 1);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT COUNT(*) FROM t LIMIT 5 garbage").is_err());
    }

    #[test]
    fn explain_statements() {
        let s = parse_statement("EXPLAIN PLAN FOR SELECT COUNT(*) FROM t WHERE a = 1").unwrap();
        assert!(matches!(&s, Statement::ExplainPlan(q) if q.table == "t"));
        assert!(s.is_explain());

        let s = parse_statement("explain analyze SELECT SUM(m) FROM t GROUP BY g TOP 5").unwrap();
        assert!(matches!(&s, Statement::ExplainAnalyze(q) if q.top == Some(5)));

        let s = parse_statement("SELECT a FROM t").unwrap();
        assert!(matches!(&s, Statement::Select(_)));
        assert!(!s.is_explain());
        assert_eq!(s.query().table, "t");
    }

    #[test]
    fn malformed_explain_rejected() {
        // Missing PLAN FOR / wrong order / no inner query.
        assert!(parse_statement("EXPLAIN SELECT a FROM t").is_err());
        assert!(parse_statement("EXPLAIN PLAN SELECT a FROM t").is_err());
        assert!(parse_statement("EXPLAIN FOR SELECT a FROM t").is_err());
        assert!(parse_statement("EXPLAIN PLAN FOR").is_err());
        assert!(parse_statement("EXPLAIN ANALYZE").is_err());
        // The inner query still gets full validation.
        assert!(parse_statement("EXPLAIN ANALYZE SELECT a FROM t TOP 5").is_err());
        // EXPLAIN is not valid inside `parse` (plain-query entry point).
        assert!(parse("EXPLAIN PLAN FOR SELECT a FROM t").is_err());
    }
}
