//! Parser robustness: `parse` must never panic — arbitrary byte soup maps
//! to a clean `InvalidQuery` error, and every structurally valid generated
//! query parses to the expected AST shape.

use pinot_pql::{parse, SelectList};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings (including non-ASCII and control characters)
    /// never panic the lexer or parser.
    #[test]
    fn arbitrary_strings_never_panic(s in ".*") {
        let _ = parse(&s);
    }

    /// Byte soup biased toward PQL tokens: worst case for the parser's
    /// recovery paths.
    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "BETWEEN",
            "GROUP", "BY", "TOP", "LIMIT", "COUNT", "SUM", "(", ")", ",",
            "*", "=", "!=", "<", "<=", ">", ">=", "'x'", "42", "-7", "3.5",
            "col", "tbl", "''",
        ]),
        0..25,
    )) {
        let q = tokens.join(" ");
        let _ = parse(&q);
    }

    /// Generated well-formed queries always parse, and the AST reflects
    /// the generated structure.
    #[test]
    fn well_formed_queries_parse(
        n_aggs in 1usize..4,
        n_preds in 0usize..4,
        group in any::<bool>(),
        top in prop::option::of(1usize..100),
    ) {
        let aggs: Vec<String> = (0..n_aggs)
            .map(|i| {
                let fns = ["COUNT(*)", "SUM(m)", "MIN(m)", "MAX(m)", "AVG(m)"];
                fns[i % fns.len()].to_string()
            })
            .collect();
        let mut q = format!("SELECT {} FROM t", aggs.join(", "));
        if n_preds > 0 {
            let preds: Vec<String> = (0..n_preds)
                .map(|i| match i % 4 {
                    0 => format!("a = {i}"),
                    1 => format!("b IN ('x', 'y{i}')"),
                    2 => format!("c BETWEEN {i} AND {}", i + 10),
                    _ => format!("d >= {}", i * 3),
                })
                .collect();
            q.push_str(&format!(" WHERE {}", preds.join(" AND ")));
        }
        if group {
            q.push_str(" GROUP BY g");
            if let Some(t) = top {
                q.push_str(&format!(" TOP {t}"));
            }
        }
        let parsed = parse(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
        prop_assert_eq!(parsed.aggregations().len(), n_aggs);
        prop_assert_eq!(parsed.filter.is_some(), n_preds > 0);
        prop_assert_eq!(!parsed.group_by.is_empty(), group);
        if group {
            prop_assert_eq!(parsed.top, top);
        }
        prop_assert!(matches!(parsed.select, SelectList::Aggregations(_)));
    }
}
